"""Cross-frame coherence: every serve path bit-identical to the oracle.

The :class:`~repro.render.coherence.FrameCoherence` carrier may answer a
frame's digestion from previous frames' state three ways — full hit
(identical content), partial hit (only some scanlines changed), or
fallback full recompute — and each must reproduce the stateless oracle
digest exactly: same arrays, same dtypes, same termination sets, same
quad-table columns, cycle-exact draws.  These tests pin that across
random coherent orbit pairs and the degenerate regimes (empty frames,
full-occlusion revisit, the max_fragments clamp boundary, HET
termination flips between frames, warm-CROP handoff).

CI runs this module under both ``REPRO_COHERENCE=incremental`` and
``=off``; tests therefore select their mode explicitly instead of
relying on the process default.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vrpipe import variant_config
from repro.engine.session import RenderSession
from repro.gaussians import Camera
from repro.gaussians.preprocess import preprocess
from repro.hwmodel.pipeline import DrawWorkload, GraphicsPipeline
from repro.render.coherence import (
    COHERENCE_MODES,
    FrameCoherence,
    resolve_coherence,
)
from repro.render.splat_raster import rasterize_splats
from repro.workloads.viewpoints import scene_viewpoints

#: The sorted-domain digestion caches the carrier serves.
CANONICAL = ("pixel_order", "pix_sorted", "pixel_starts",
             "alpha_eff_sorted", "arrival_sorted")

#: Quad-table columns compared (incl. dtypes) between carrier and oracle.
QUAD_COLUMNS = ("prim_ids", "qx", "qy", "tile_ids", "grid_ids", "qpos",
                "mask_unpruned", "mask_et", "mask_unterminated")


def _digest(stream):
    """Materialise and collect the canonical digested state."""
    stream._ensure_arrival_sorted()
    out = {k: stream._cache[k] for k in CANONICAL}
    out["accumulated"] = stream.accumulated_alpha
    return out


def _assert_bitwise(expected, got):
    for k in expected:
        a, b = np.asarray(expected[k]), np.asarray(got[k])
        assert a.dtype == b.dtype, f"{k}: dtype {a.dtype} != {b.dtype}"
        assert a.shape == b.shape, f"{k}: shape {a.shape} != {b.shape}"
        # Byte-level equality: exact for ints and floats alike (no NaN
        # leniency, no tolerance).
        assert np.array_equal(a.view(np.uint8), b.view(np.uint8)), k


def _assert_quads_identical(sa, sb, config):
    qa = sa.quad_table(config.termination_alpha, config.het_inflight_lag)
    qb = sb.quad_table(config.termination_alpha, config.het_inflight_lag)
    _assert_bitwise({k: getattr(qa, k) for k in QUAD_COLUMNS},
                    {k: getattr(qb, k) for k in QUAD_COLUMNS})


def _assert_draws_identical(sa, sb, config):
    wa = DrawWorkload.from_stream(sa, config)
    wb = DrawWorkload.from_stream(sb, config)
    ra = GraphicsPipeline(config).draw(wa)
    rb = GraphicsPipeline(config).draw(wb)
    assert ra.stats.total_cycles == rb.stats.total_cycles
    for unit in ra.stats.units:
        ua, ub = ra.stats.units[unit], rb.stats.units[unit]
        assert ua.busy_cycles == ub.busy_cycles, unit
        assert ua.items == ub.items, unit


class TestKnob:
    def test_modes_enumerated(self):
        assert resolve_coherence("auto") == "auto"
        assert resolve_coherence("incremental") == "incremental"
        assert resolve_coherence("off") == "off"

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_COHERENCE", raising=False)
        assert resolve_coherence() == "auto"
        monkeypatch.setenv("REPRO_COHERENCE", "incremental")
        assert resolve_coherence() == "incremental"

    def test_invalid_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="coherence"):
            resolve_coherence("sometimes")
        monkeypatch.setenv("REPRO_COHERENCE", "bogus")
        with pytest.raises(ValueError, match="coherence"):
            resolve_coherence()

    def test_modes_tuple_is_contract(self):
        assert tuple(COHERENCE_MODES) == ("auto", "incremental", "off")

    def test_incremental_refuses_parallel_run(self):
        session = RenderSession("lego", baseline=None,
                                coherence="incremental")
        with pytest.raises(ValueError, match="serial"):
            session.run(n_views=2, jobs=2)


class TestServePaths:
    """Full hit / partial hit / fallback, each against a fresh oracle."""

    def _fresh(self, pre, camera):
        return rasterize_splats(pre.splats, camera.width, camera.height)

    def test_full_hit_bit_identical(self, small_pre, small_camera):
        car = FrameCoherence("incremental")
        s1 = self._fresh(small_pre, small_camera)
        car.begin_frame(s1)
        _digest(s1)
        s2 = self._fresh(small_pre, small_camera)
        car.begin_frame(s2)
        got = _digest(s2)
        assert car.stats["full_hits"] == 1
        oracle = _digest(self._fresh(small_pre, small_camera))
        _assert_bitwise(oracle, got)

    def test_partial_hit_bit_identical(self, deep_pre, deep_camera):
        car = FrameCoherence("incremental")
        s1 = self._fresh(deep_pre, deep_camera)
        car.begin_frame(s1)
        _digest(s1)
        # Same raster geometry, alphas perturbed on a scanline band: the
        # carrier should classify most scanlines clean and recompute only
        # the band.
        s2 = self._fresh(deep_pre, deep_camera)
        band = (s2.y >= 30) & (s2.y < 50)
        alphas = s2.alphas.copy()
        alphas[band] = np.minimum(np.float32(0.97),
                                  alphas[band] * np.float32(1.01))
        s2.alphas = alphas
        car.begin_frame(s2)
        got = _digest(s2)
        assert car.stats["partial_hits"] == 1
        s_ref = self._fresh(deep_pre, deep_camera)
        s_ref.alphas = alphas
        _assert_bitwise(_digest(s_ref), got)

    def test_fallback_bit_identical(self, deep_pre, deep_camera):
        car = FrameCoherence("incremental")
        s1 = self._fresh(deep_pre, deep_camera)
        car.begin_frame(s1)
        _digest(s1)
        # Every fragment's alpha changes: coherence is zero, the carrier
        # must fall back to the full recompute oracle.
        s2 = self._fresh(deep_pre, deep_camera)
        rng = np.random.default_rng(3)
        alphas = (s2.alphas
                  * rng.uniform(0.9, 0.999, len(s2)).astype(np.float32))
        s2.alphas = alphas
        car.begin_frame(s2)
        got = _digest(s2)
        assert car.stats["full_recomputes"] == 1
        s_ref = self._fresh(deep_pre, deep_camera)
        s_ref.alphas = alphas
        _assert_bitwise(_digest(s_ref), got)

    def test_off_mode_is_inert(self, small_pre, small_camera):
        car = FrameCoherence("off")
        s1 = self._fresh(small_pre, small_camera)
        car.begin_frame(s1)
        assert s1.coherence is None
        _digest(s1)
        assert car.stats == {"full_hits": 0, "partial_hits": 0,
                             "full_recomputes": 0}


class TestRadixGroupingPin:
    """The radix/IR pixel grouping must equal the legacy stable argsort.

    The *permutation* (and everything ordering-derived: pix_sorted,
    pixel_starts, the gathered effective alphas) is bit-identical across
    the two groupings.  The arrival chain itself differs between the
    engines by design — the IR path scans per scanline where the legacy
    oracle scans globally, a different (cleaner) float summation order —
    so arrival values are compared numerically and every *consumer*
    (termination masks, quad-table columns) bitwise.
    """

    ORDER_KEYS = ("pixel_order", "pix_sorted", "pixel_starts",
                  "alpha_eff_sorted")

    def test_order_equality(self, small_pre, small_camera, deep_pre,
                            deep_camera):
        config = variant_config("het+qm")
        for pre, cam in ((small_pre, small_camera), (deep_pre, deep_camera)):
            s_ir = rasterize_splats(pre.splats, cam.width, cam.height,
                                    ir="frameir")
            s_legacy = rasterize_splats(pre.splats, cam.width, cam.height,
                                        ir="legacy")
            assert s_ir._use_ir_digest()
            assert not s_legacy._use_ir_digest()
            d_ir, d_legacy = _digest(s_ir), _digest(s_legacy)
            _assert_bitwise({k: d_legacy[k] for k in self.ORDER_KEYS},
                            {k: d_ir[k] for k in self.ORDER_KEYS})
            np.testing.assert_allclose(d_ir["arrival_sorted"],
                                       d_legacy["arrival_sorted"],
                                       rtol=0, atol=1e-9)
            np.testing.assert_allclose(d_ir["accumulated"],
                                       d_legacy["accumulated"],
                                       rtol=0, atol=1e-9)
            _assert_quads_identical(s_legacy, s_ir, config)
            _assert_bitwise(
                {"et": s_legacy.et_survivor_mask()},
                {"et": s_ir.et_survivor_mask()})


class TestCoherentOrbitFuzz:
    """Random coherent orbit pairs: serve whatever path, match the oracle."""

    def test_orbit_pairs(self, deep_cloud):
        rng = np.random.default_rng(0xC0)
        config = variant_config("het+qm")
        car = FrameCoherence("incremental")
        for trial in range(5):
            angle = rng.uniform(0, 2 * np.pi)
            # Nearby viewpoints of one orbit step: highly (but not fully)
            # coherent frames, the production trajectory regime.
            delta = rng.uniform(0.0, 0.02)
            for theta in (angle, angle + delta):
                eye = (2.2 * np.sin(theta), 0.1, -2.2 * np.cos(theta))
                cam = Camera.look_at(eye=eye, target=(0, 0, 0),
                                     width=96, height=96)
                pre = preprocess(deep_cloud, cam)
                stream = rasterize_splats(pre.splats, cam.width, cam.height)
                car.begin_frame(stream)
                got = _digest(stream)
                oracle = rasterize_splats(pre.splats, cam.width, cam.height)
                _assert_bitwise(_digest(oracle), got)
                _assert_quads_identical(oracle, stream, config)
        served = car.stats["full_hits"] + car.stats["partial_hits"]
        assert served + car.stats["full_recomputes"] >= 9

    def test_revisit_is_full_hit_and_draw_exact(self, deep_cloud):
        """An orbit that returns to a viewpoint serves it from the library."""
        config = variant_config("het+qm")
        cams = [Camera.look_at(eye=(2.2 * np.sin(t), 0.1, -2.2 * np.cos(t)),
                               target=(0, 0, 0), width=96, height=96)
                for t in (0.0, 0.4, 0.0)]
        car = FrameCoherence("incremental")
        streams = []
        for cam in cams:
            pre = preprocess(deep_cloud, cam)
            stream = rasterize_splats(pre.splats, cam.width, cam.height)
            car.begin_frame(stream)
            _digest(stream)
            streams.append((stream, pre, cam))
        assert car.stats["full_hits"] >= 1
        stream, pre, cam = streams[2]
        oracle = rasterize_splats(pre.splats, cam.width, cam.height)
        _assert_bitwise(_digest(oracle), _digest(stream))
        _assert_draws_identical(oracle, stream, config)


class TestDegenerateRegimes:
    def test_empty_frames(self, small_cloud):
        # A camera facing away from the scene: zero visible fragments.
        away = Camera.look_at(eye=(0, 0, -3), target=(0, 0, -9),
                              width=64, height=64)
        car = FrameCoherence("incremental")
        for _ in range(2):
            pre = preprocess(small_cloud, away)
            stream = rasterize_splats(pre.splats, away.width, away.height)
            assert len(stream) == 0
            car.begin_frame(stream)
            got = _digest(stream)
            oracle = rasterize_splats(pre.splats, away.width, away.height)
            _assert_bitwise(_digest(oracle), got)

    def test_empty_then_full_then_empty(self, small_cloud, small_camera):
        away = Camera.look_at(eye=(0, 0, -3), target=(0, 0, -9),
                              width=96, height=96)
        car = FrameCoherence("incremental")
        for cam in (away, small_camera, away):
            pre = preprocess(small_cloud, cam)
            stream = rasterize_splats(pre.splats, cam.width, cam.height)
            car.begin_frame(stream)
            got = _digest(stream)
            oracle = rasterize_splats(pre.splats, cam.width, cam.height)
            _assert_bitwise(_digest(oracle), got)

    def test_full_occlusion_revisit(self, deep_pre, deep_camera):
        """Saturating layered content: termination sets survive reuse."""
        config = variant_config("het")
        car = FrameCoherence("incremental")
        streams = []
        for _ in range(2):
            stream = rasterize_splats(deep_pre.splats, deep_camera.width,
                                      deep_camera.height)
            car.begin_frame(stream)
            _digest(stream)
            streams.append(stream)
        assert car.stats["full_hits"] == 1
        oracle = rasterize_splats(deep_pre.splats, deep_camera.width,
                                  deep_camera.height)
        wa = DrawWorkload.from_stream(oracle, config)
        wb = DrawWorkload.from_stream(streams[1], config)
        assert wa.n_terminated_pixels > 0  # the regime actually occludes
        assert wa.n_terminated_pixels == wb.n_terminated_pixels
        assert np.array_equal(wa.terminated_stencil_tags,
                              wb.terminated_stencil_tags)
        _assert_bitwise(
            {"et": oracle.et_survivor_mask(config.termination_alpha)},
            {"et": streams[1].et_survivor_mask(config.termination_alpha)})

    def test_max_fragments_clamp_boundary(self, small_pre, small_camera):
        w, h = small_camera.width, small_camera.height
        n = len(rasterize_splats(small_pre.splats, w, h))
        with pytest.raises(MemoryError, match="max_fragments"):
            rasterize_splats(small_pre.splats, w, h, max_fragments=n - 1)
        # The carrier never saw the aborted frame; at the exact clamp
        # boundary the stream digests normally and still full-hits.
        car = FrameCoherence("incremental")
        s1 = rasterize_splats(small_pre.splats, w, h, max_fragments=n)
        car.begin_frame(s1)
        _digest(s1)
        with pytest.raises(MemoryError, match="max_fragments"):
            rasterize_splats(small_pre.splats, w, h, max_fragments=n - 1)
        s2 = rasterize_splats(small_pre.splats, w, h, max_fragments=n)
        car.begin_frame(s2)
        got = _digest(s2)
        assert car.stats["full_hits"] == 1
        _assert_bitwise(_digest(rasterize_splats(small_pre.splats, w, h)),
                        got)

    def test_het_termination_flips_between_frames(self, deep_pre,
                                                  deep_camera):
        """Alphas flip pixels across the HET threshold frame-to-frame."""
        config = variant_config("het")
        w, h = deep_camera.width, deep_camera.height
        car = FrameCoherence("incremental")
        scales = (np.float32(1.0), np.float32(0.6), np.float32(1.0))
        base = rasterize_splats(deep_pre.splats, w, h).alphas.copy()
        terminated = []
        for scale in scales:
            stream = rasterize_splats(deep_pre.splats, w, h)
            stream.alphas = np.minimum(np.float32(0.99), base * scale)
            car.begin_frame(stream)
            got = _digest(stream)
            oracle = rasterize_splats(deep_pre.splats, w, h)
            oracle.alphas = stream.alphas.copy()
            _assert_bitwise(_digest(oracle), got)
            _assert_quads_identical(oracle, stream, config)
            terminated.append(
                DrawWorkload.from_stream(stream, config).n_terminated_pixels)
        # The flip is real: damping the alphas changes the termination set.
        assert terminated[0] != terminated[1]
        assert terminated[0] == terminated[2]


class TestStaleCacheGuard:
    """Carrier-shared arrays are frozen: mutation raises, never corrupts."""

    def test_captured_and_served_arrays_read_only(self, small_pre,
                                                  small_camera):
        w, h = small_camera.width, small_camera.height
        car = FrameCoherence("incremental")
        s1 = rasterize_splats(small_pre.splats, w, h)
        car.begin_frame(s1)
        _digest(s1)
        s2 = rasterize_splats(small_pre.splats, w, h)
        car.begin_frame(s2)
        _digest(s2)
        assert car.stats["full_hits"] == 1
        for stream in (s1, s2):
            for key in CANONICAL:
                with pytest.raises((ValueError, RuntimeError)):
                    stream._cache[key][0:1] = 0

    def test_mutation_after_capture_does_not_poison_library(
            self, small_pre, small_camera):
        """Rebinding inputs after capture must not alter what later
        frames are served: the content hash keys the *digested* state."""
        w, h = small_camera.width, small_camera.height
        car = FrameCoherence("incremental")
        s1 = rasterize_splats(small_pre.splats, w, h)
        car.begin_frame(s1)
        expected = {k: v.copy() for k, v in _digest(s1).items()}
        # Rebind the captured stream's alphas (in-place writes raise; a
        # rebind is the remaining mutation avenue).  A later identical
        # frame is verified against the *stored* content, so it must be
        # served the original digest, not the mutated stream's.
        s1.alphas = s1.alphas * np.float32(0.5)
        s2 = rasterize_splats(small_pre.splats, w, h)
        car.begin_frame(s2)
        _assert_bitwise(expected, _digest(s2))


class TestWarmTrajectorySessions:
    def test_warm_crop_handoff_cycle_exact(self):
        """Warm-CROP sessions under incremental vs off: identical stats."""
        runs = {}
        for mode in ("incremental", "off"):
            session = RenderSession("lego", backend="hw:het+qm",
                                    baseline=None, warm_crop_cache=True,
                                    coherence=mode)
            runs[mode] = session.run(n_views=2)
        for inc, off in zip(runs["incremental"].records,
                            runs["off"].records):
            assert inc.cycles == off.cycles
            assert inc.ms == off.ms
            assert inc.et_ratio == off.et_ratio

    def test_interleaved_cache_and_coherence_hits(self, monkeypatch,
                                                  tmp_path):
        """Satellite: warm sessions under REPRO_IR=frameir, interleaving
        disk-cache-hit runs with coherence-hit revisited viewpoints,
        bit-identical to cold recompute."""
        from repro.engine.cache import ResultCache

        monkeypatch.setenv("REPRO_IR", "frameir")
        cache = ResultCache(tmp_path / "traj")
        warm = RenderSession("lego", backend="hw:het+qm", baseline=None,
                             result_cache=cache, coherence="incremental")
        cold = RenderSession("lego", backend="hw:het+qm", baseline=None,
                             coherence="off")

        first = warm.run(n_views=2)
        assert not first.from_cache
        # Disk-cache hit: the whole trajectory replays from the cache.
        replay = warm.run(n_views=2)
        assert replay.from_cache
        for a, b in zip(first.records, replay.records):
            assert a.cycles == b.cycles

        # Coherence hits: revisit the trajectory's viewpoints frame by
        # frame (render_frame bypasses the disk cache), interleaved with
        # cold recomputes, and demand bit-identical images and
        # cycle-exact hardware stats.
        cams = scene_viewpoints("lego", 2)
        for cam in (cams[0], cams[1], cams[0]):
            r_warm = warm.render_frame(camera=cam)
            r_cold = cold.render_frame(camera=cam)
            assert r_warm.cycles == r_cold.cycles
            sw, sc = r_warm.pipeline_stats, r_cold.pipeline_stats
            assert sw.total_cycles == sc.total_cycles
            for unit in sw.units:
                assert sw.units[unit].busy_cycles == sc.units[unit].busy_cycles
                assert sw.units[unit].items == sc.units[unit].items
            assert np.array_equal(r_warm.image, r_cold.image)
            assert np.array_equal(r_warm.alpha, r_cold.alpha)
        stats = warm._carrier().stats
        assert stats["full_hits"] >= 1

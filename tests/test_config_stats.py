"""GPU configuration and pipeline statistics."""

import pytest

from repro.hwmodel.config import EnergyTable, GPUConfig, jetson_agx_orin, rtx_3090
from repro.hwmodel.stats import PipelineStats, UnitStats


class TestGPUConfig:
    def test_table1_defaults(self):
        cfg = jetson_agx_orin()
        assert cfg.n_gpc == 1
        assert cfg.n_sm == 16
        assert cfg.sm_freq_mhz == 612.0
        assert cfg.lanes_per_sm == 64
        assert cfg.crop_cache_kb == 16
        assert cfg.raster_tile_px == 8
        assert cfg.tile_grid_px == 64
        assert cfg.n_tgc_bins == 128
        assert cfg.tgc_bin_prims == 16
        assert cfg.n_tc_bins == 32
        assert cfg.tc_bin_quads == 128
        assert cfg.rop_quads_per_cycle == 2.0

    def test_variant_override(self):
        cfg = jetson_agx_orin(enable_het=True)
        assert cfg.enable_het and not cfg.enable_qm
        # Original helper unchanged.
        assert not jetson_agx_orin().enable_het

    def test_format_throughput(self):
        cfg = jetson_agx_orin()
        assert cfg.crop_quads_per_cycle == 2.0
        assert cfg.variant(color_format="rgba8").crop_quads_per_cycle == 4.0

    def test_bytes_per_pixel(self):
        assert jetson_agx_orin().bytes_per_pixel == 8
        assert jetson_agx_orin(color_format="rgba8").bytes_per_pixel == 4

    def test_rejects_bad_format(self):
        with pytest.raises(ValueError):
            GPUConfig(color_format="rgb10")

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            GPUConfig(termination_alpha=1.5)

    def test_rejects_nonpositive_bins(self):
        with pytest.raises(ValueError):
            GPUConfig(n_tc_bins=0)

    def test_rtx3090_bigger(self):
        orin, rtx = jetson_agx_orin(), rtx_3090()
        assert rtx.n_sm > orin.n_sm
        assert rtx.rop_quads_per_cycle > orin.rop_quads_per_cycle
        assert rtx.frequency_hz() > orin.frequency_hz()

    def test_issue_slots(self):
        assert jetson_agx_orin().sm_issue_slots_per_cycle == 64

    def test_energy_table_defaults(self):
        table = EnergyTable()
        assert table.dram_byte_pj > table.cache_access_pj > table.blend_pj


class TestStats:
    def test_unit_accumulates(self):
        unit = UnitStats("crop")
        unit.add(10, 5.0)
        unit.add(2, 1.0)
        assert unit.items == 12
        assert unit.busy_cycles == 6.0

    def test_unit_rejects_negative(self):
        with pytest.raises(ValueError):
            UnitStats("x").add(-1, 0)

    def test_finalize_and_utilization(self):
        stats = PipelineStats()
        stats.units["crop"].add(100, 1000.0)
        stats.units["sm"].add(10, 200.0)
        total = stats.finalize(fill_cycles=100.0)
        assert total == 1100.0
        util = stats.utilization()
        assert util["crop"] == pytest.approx(1000 / 1100)
        assert stats.bottleneck() == "crop"

    def test_utilization_requires_finalize(self):
        with pytest.raises(RuntimeError):
            PipelineStats().utilization()

    def test_summary_renders(self):
        stats = PipelineStats()
        stats.units["crop"].add(1, 1.0)
        stats.finalize(0.0)
        text = stats.summary()
        assert "crop" in text and "bottleneck" in text

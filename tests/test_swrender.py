"""CUDA-style software renderer: tiling, lockstep warps, kernel model."""

import numpy as np
import pytest

from repro.render.fragstream import FragmentStream
from repro.swrender.renderer import CudaRenderer, SWKernelModel
from repro.swrender.tiling import assign_tiles
from repro.swrender.warp_model import simulate_tile_warps


class TestTiling:
    def test_duplication_at_least_one(self, small_pre, small_camera):
        assignment = assign_tiles(small_pre.splats, small_camera.width,
                                  small_camera.height)
        on_screen = assignment.pairs_per_splat > 0
        assert on_screen.sum() > 0
        assert assignment.duplication_factor >= 1.0

    def test_bigger_splats_more_tiles(self, small_pre, small_camera):
        assignment = assign_tiles(small_pre.splats, small_camera.width,
                                  small_camera.height)
        radii = small_pre.splats.radii.max(axis=1)
        big = assignment.pairs_per_splat[radii > np.median(radii)].mean()
        small = assignment.pairs_per_splat[radii <= np.median(radii)].mean()
        assert big >= small

    def test_type_check(self):
        with pytest.raises(TypeError):
            assign_tiles("splats", 64, 64)


class TestWarpModel:
    def test_et_reduces_rounds(self, deep_stream):
        we = simulate_tile_warps(deep_stream)
        assert we.rounds_et <= we.rounds_no_et
        assert we.et_speedup() >= 1.0

    def test_et_speedup_below_frag_reduction(self, deep_stream):
        """Lockstep: warp-level exit cannot realise per-pixel savings."""
        we = simulate_tile_warps(deep_stream)
        assert we.et_speedup() <= deep_stream.termination_ratio() + 1e-9

    def test_blend_fraction_below_one(self, deep_stream):
        we = simulate_tile_warps(deep_stream)
        frac = we.blending_thread_fraction()
        assert 0.0 < frac < 1.0

    def test_empty_stream(self):
        from repro.render.fragstream import FragmentStream
        empty = FragmentStream(np.empty(0, np.int32), np.empty(0, np.int32),
                               np.empty(0, np.int32), np.empty(0, np.float32),
                               np.zeros((0, 3)), 32, 32)
        we = simulate_tile_warps(empty)
        assert we.rounds_no_et == 0
        assert we.et_speedup() == 1.0
        assert we.blending_thread_fraction() == 0.0

    def test_rounds_count_shallow_scene(self):
        """One full-tile splat -> 8 warps x 1 round."""
        from tests.test_fragstream import make_stream
        frags = [(0, x, y, 0.5) for x in range(16) for y in range(16)]
        s = make_stream(frags, width=16, height=16)
        we = simulate_tile_warps(s)
        assert we.rounds_no_et == 8


class TestCudaRenderer:
    def test_render(self, small_cloud, small_camera):
        result = CudaRenderer().render(small_cloud, small_camera)
        assert result.image.shape == (96, 96, 3)
        b = result.timing.breakdown_ms()
        assert all(v > 0 for v in b.values())
        assert result.timing.fps() > 0

    def test_early_term_faster(self, deep_cloud, deep_camera):
        with_et = CudaRenderer(early_term=True).render(deep_cloud,
                                                       deep_camera)
        without = CudaRenderer(early_term=False).render(deep_cloud,
                                                        deep_camera)
        assert (with_et.timing.raster_cycles
                < without.timing.raster_cycles)

    def test_image_matches_reference(self, small_cloud, small_camera):
        from repro.render.reference import render_reference
        result = CudaRenderer(early_term=False).render(small_cloud,
                                                       small_camera)
        ref = render_reference(small_cloud, small_camera)
        np.testing.assert_allclose(result.image, ref.image, atol=1e-12)

    def test_kernel_model_scaling(self):
        model = SWKernelModel()
        assert model.preprocess_cycles(100, 400) > model.preprocess_cycles(
            100, 100)
        assert model.sort_cycles(1000) == 10 * model.sort_cycles(100)

    def test_render_stream_consumes_stream_binning(self, small_stream,
                                                   small_pre):
        # Without pre=, the stream's own TileBinning sizes the duplication
        # (exact counts, no re-binning) instead of raising.
        result = CudaRenderer().render_stream(small_stream)
        binning = small_stream.binning
        assert result.tiling.n_pairs == binning.n_pairs
        np.testing.assert_array_equal(result.tiling.pairs_per_splat,
                                      binning.pairs_per_splat())

    def test_render_stream_requires_pre_or_binning(self, small_stream):
        bare = FragmentStream(
            small_stream.prim_ids, small_stream.x, small_stream.y,
            small_stream.alphas, small_stream.prim_colors,
            small_stream.width, small_stream.height)
        with pytest.raises(ValueError, match="PreprocessResult"):
            CudaRenderer().render_stream(bare)

    def test_type_checks(self, small_camera):
        with pytest.raises(TypeError):
            CudaRenderer().render("cloud", small_camera)

"""Chaos suite: fault injection, the degradation ladder, cache hardening.

The acceptance bar for every injection point is *bit-identity*: a chaos
trajectory must finish with aggregate statistics exactly equal to the
fault-free oracle run (the ladder's degraded rungs are retained bit-exact
oracles, not approximations), with every recovery logged as a structured
incident on the frame that healed.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import faults
from repro.engine import (
    FrameExecutionError,
    FrameLadderExhausted,
    ResultCache,
    run_frames,
)
from repro.engine.cache import CACHE_SCHEMA, payload_checksum
from repro.engine.session import RenderSession
from repro.faults import FaultPlan
from repro.hwmodel.caches import LRUCache

SCENE = "lego"
N_VIEWS = 3


@pytest.fixture(scope="module")
def clean_aggregates():
    """The fault-free oracle run every chaos run must match exactly."""
    with faults.active(None):
        result = RenderSession(SCENE).run(n_views=N_VIEWS)
    return result.aggregates()


def chaos_run(plan_text, *, jobs=1, coherence=None, **session_kw):
    session = RenderSession(SCENE, coherence=coherence, **session_kw)
    with faults.active(FaultPlan.parse(plan_text)):
        return session.run(n_views=N_VIEWS, jobs=jobs)


# ----------------------------------------------------------------------
# Plan grammar and harness mechanics
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_parse_round_trip(self):
        text = "seed=7;digest:raise,times=1;lru.replay:corrupt,p=0.5"
        plan = FaultPlan.parse(text)
        assert plan.seed == 7
        assert FaultPlan.parse(plan.spec()).spec() == plan.spec()

    def test_parse_stall_delay(self):
        rule = FaultPlan.parse("rasterize:stall,delay=2.5,after=3").rules[0]
        assert rule.kind == "stall"
        assert rule.delay_ms == 2.5
        assert rule.after == 3

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultPlan.parse("nonsense:raise")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("digest:explode")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown fault rule key"):
            FaultPlan.parse("digest:raise,volume=11")

    def test_probabilistic_draws_are_seed_deterministic(self):
        draws = []
        for _ in range(2):
            plan = FaultPlan.parse("seed=9; digest:raise,p=0.5")
            draws.append([plan.draw("digest") is not None
                          for _ in range(64)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_times_and_after_gates(self):
        plan = FaultPlan.parse("digest:raise,times=2,after=1")
        fired = [plan.draw("digest") is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]
        plan.reset()
        assert plan.draw("digest") is None

    @pytest.mark.skipif(bool(os.environ.get("REPRO_FAULTS")),
                        reason="an environment fault plan is installed")
    def test_disabled_by_default(self):
        assert faults.current_plan() is None
        assert faults.ENABLED is False

    def test_active_restores_previous_plan(self):
        before = faults.current_plan()
        with faults.active("digest:raise"):
            assert faults.ENABLED is True
            assert faults.current_plan().rules[0].point == "digest"
        assert faults.current_plan() is before

    def test_checkpoint_raises_and_counts(self):
        with faults.active("digest:raise,times=1") as plan:
            with pytest.raises(faults.FaultInjected) as excinfo:
                faults.checkpoint("digest")
            assert excinfo.value.point == "digest"
            assert faults.checkpoint("digest") is None  # times exhausted
            assert plan.fired("digest") == 1


# ----------------------------------------------------------------------
# The degradation ladder: every injection point heals bit-identically
# ----------------------------------------------------------------------

class TestLadder:
    def _assert_healed(self, result, clean_aggregates, rung, point):
        assert result.aggregates() == clean_aggregates
        incidents = result.incidents()
        assert incidents, "expected at least one incident"
        assert {inc["recovered_by"] for inc in incidents} == {rung}
        assert {inc["point"] for inc in incidents} == {point}

    def test_transient_rasterize_fault_heals_on_retry(self, clean_aggregates):
        result = chaos_run("rasterize:raise,times=1")
        self._assert_healed(result, clean_aggregates, "retry", "rasterize")
        assert len(result.incidents()) == 1

    def test_persistent_digest_fault_heals_at_legacy_ir(self,
                                                        clean_aggregates):
        result = chaos_run("digest:raise", coherence="incremental")
        self._assert_healed(result, clean_aggregates, "ir=legacy", "digest")
        # Every frame climbed every shallower rung first (the hardware
        # digestion still reads the FrameIR on the swmodel=legacy rung).
        rungs_climbed = RenderSession.LADDER.index("ir=legacy")
        assert len(result.incidents()) == rungs_climbed * N_VIEWS

    def test_cuda_digest_fault_heals_at_legacy_swmodel(self):
        """The software models heal one rung *earlier* than the hardware
        path: swmodel=legacy sidesteps FrameIR digestion entirely while
        the stream (and the session's ir knob) stay untouched — and the
        healed trajectory matches the fault-free oracle bit for bit."""
        kwargs = dict(backend="cuda+et", baseline=None)
        with faults.active(None):
            clean = RenderSession(SCENE, **kwargs).run(n_views=N_VIEWS)
        session = RenderSession(SCENE, coherence="incremental", **kwargs)
        with faults.active("digest:raise"):
            chaos = session.run(n_views=N_VIEWS)
        assert chaos.aggregates() == clean.aggregates()
        incidents = chaos.incidents()
        assert incidents
        assert {inc["recovered_by"] for inc in incidents} == {"swmodel=legacy"}
        assert {inc["point"] for inc in incidents} == {"digest"}
        rungs_climbed = RenderSession.LADDER.index("swmodel=legacy")
        assert len(incidents) == rungs_climbed * N_VIEWS

    def test_coherence_fault_heals_with_carrier_off(self, clean_aggregates):
        result = chaos_run("coherence.verify:raise", coherence="incremental")
        self._assert_healed(result, clean_aggregates, "coherence=off",
                            "coherence.verify")

    def test_flushplan_fault_heals_on_scalar_engine(self, clean_aggregates):
        result = chaos_run("flushplan:raise")
        self._assert_healed(result, clean_aggregates, "engine=scalar",
                            "flushplan")

    def test_corrupted_lru_replay_is_detected_and_heals(self,
                                                        clean_aggregates):
        result = chaos_run("lru.replay:corrupt")
        self._assert_healed(result, clean_aggregates, "engine=scalar",
                            "lru.replay")
        assert all("CorruptDataError" in inc["error"]
                   for inc in result.incidents())

    def test_corrupted_coherence_state_forces_exact_recompute(
            self, clean_aggregates):
        # Detected inline (forced verify miss), so no incident is raised —
        # the run is simply served by the full-recompute oracle.
        result = chaos_run("coherence.verify:corrupt",
                           coherence="incremental")
        assert result.aggregates() == clean_aggregates
        assert result.incidents() == []

    def test_parallel_frames_heal_too(self, clean_aggregates):
        result = chaos_run("digest:raise,times=1", jobs=2)
        assert result.aggregates() == clean_aggregates
        assert len(result.incidents()) == 1

    def test_watchdog_interrupts_stall_at_checkpoint(self):
        with faults.active("digest:stall,delay=30000"):
            start = time.perf_counter()
            with faults.watchdog(100):
                with pytest.raises(faults.WatchdogTimeout) as excinfo:
                    faults.checkpoint("digest")
            elapsed = time.perf_counter() - start
        assert excinfo.value.point == "digest"
        assert excinfo.value.budget_ms == 100
        assert elapsed < 5.0  # nowhere near the 30 s stall

    def test_stall_with_watchdog_times_out_and_heals(self):
        # A lightweight single-frame run so only the injected stall can
        # plausibly exceed the budget.
        kwargs = dict(backend="hw:baseline", baseline=None)
        with faults.active(None):
            clean = RenderSession(SCENE, **kwargs).run(n_views=1)
        session = RenderSession(SCENE, watchdog_ms=5000, **kwargs)
        with faults.active("digest:stall,delay=60000,times=1"):
            chaos = session.run(n_views=1)
        assert chaos.aggregates() == clean.aggregates()
        incidents = chaos.incidents()
        assert len(incidents) == 1
        assert "WatchdogTimeout" in incidents[0]["error"]
        assert incidents[0]["point"] == "digest"
        assert incidents[0]["recovered_by"] == "retry"
        assert incidents[0]["wall_ms"] >= 5000

    def test_strict_mode_raises_through(self):
        session = RenderSession(SCENE, strict=True)
        with faults.active("digest:raise"):
            with pytest.raises(faults.FaultInjected):
                session.run(n_views=N_VIEWS)

    def test_unhealable_fault_exhausts_the_ladder(self):
        session = RenderSession(SCENE)
        with faults.active("rasterize:raise"):
            with pytest.raises(FrameLadderExhausted) as excinfo:
                session.run(n_views=N_VIEWS)
        err = excinfo.value
        assert err.index == 0
        assert len(err.incidents) == len(RenderSession.LADDER)
        assert {inc.rung for inc in err.incidents} == set(RenderSession.LADDER)
        assert isinstance(err.__cause__, faults.FaultInjected)

    def test_instance_backends_only_retry(self, clean_aggregates):
        # A ready backend instance can't be rebuilt from a spec, so the
        # ladder stops after the retry rung.
        from repro.engine import create_backend
        backend = create_backend("hw:het+qm")
        session = RenderSession(SCENE, backend=backend, baseline=None)
        assert session._ladder_rungs() == ("primary", "retry")
        with faults.active("digest:raise"):
            with pytest.raises(FrameLadderExhausted):
                session.run(n_views=1)

    def test_incidents_survive_the_disk_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with faults.active(FaultPlan.parse("digest:raise,times=1")):
            first = RenderSession(SCENE, result_cache=cache).run(
                n_views=N_VIEWS)
        second = RenderSession(SCENE, result_cache=cache).run(
            n_views=N_VIEWS)
        assert second.from_cache
        assert second.incidents() == first.incidents()
        assert second.aggregates() == first.aggregates()

    def test_incident_summary_rollup(self):
        result = chaos_run("digest:raise,times=1")
        summary = result.incident_summary()
        assert summary["count"] == 1
        assert summary["frames_affected"] == 1
        assert summary["recovered_by"] == {"retry": 1}
        assert summary["by_point"] == {"digest": 1}
        assert summary["wall_ms"] > 0.0


# ----------------------------------------------------------------------
# ResultCache hardening
# ----------------------------------------------------------------------

class TestCacheHardening:
    def test_store_survives_transient_oserror(self, tmp_path):
        cache = ResultCache(tmp_path)
        with faults.active("cache.store:oserror,times=1"):
            assert cache.store("k1", {"value": 42}) is True
        assert cache.counters["store_retries"] == 1
        assert len(cache) == 1
        assert cache.load("k1")["value"] == 42

    def test_store_degrades_to_uncached_on_persistent_oserror(self,
                                                              tmp_path):
        cache = ResultCache(tmp_path)
        with faults.active("cache.store:oserror"):
            assert cache.store("k1", {"value": 42}) is False
        assert cache.counters["store_failures"] == 1
        assert len(cache) == 0
        assert list(tmp_path.glob("*.tmp")) == []

    def test_session_completes_when_store_always_fails(self, tmp_path,
                                                       clean_aggregates):
        cache = ResultCache(tmp_path)
        result = chaos_run("cache.store:oserror", result_cache=cache)
        assert result.aggregates() == clean_aggregates
        assert len(cache) == 0

    def test_corrupted_load_quarantines_and_recomputes(self, tmp_path,
                                                       clean_aggregates):
        cache = ResultCache(tmp_path)
        RenderSession(SCENE, result_cache=cache).run(n_views=N_VIEWS)
        assert len(cache) == 1
        result = chaos_run("cache.load:corrupt", result_cache=cache)
        assert not result.from_cache
        assert result.aggregates() == clean_aggregates
        # The bad entry went to quarantine and the recomputed result was
        # re-stored, so the cache healed itself.
        assert len(cache) == 1
        assert list(cache.quarantine_dir.glob("*.checksum.json"))
        assert cache.counters["quarantined"] == 1
        follow_up = RenderSession(SCENE, result_cache=cache).run(
            n_views=N_VIEWS)
        assert follow_up.from_cache

    def test_corrupted_store_is_caught_at_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        with faults.active("cache.store:corrupt"):
            assert cache.store("k1", {"value": 42}) is True
        assert cache.load("k1") is None
        assert list(cache.quarantine_dir.glob("k1.checksum.json"))

    def test_unparseable_entry_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache._path("bad").write_text("{not json", encoding="utf-8")
        assert cache.load("bad") is None
        assert len(cache) == 0
        assert list(cache.quarantine_dir.glob("bad.corrupt.json"))

    def test_schema_mismatch_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        stale = {"schema": CACHE_SCHEMA - 1, "value": 1}
        cache._path("old").write_text(json.dumps(stale), encoding="utf-8")
        assert len(cache) == 1
        assert cache.load("old") is None
        assert len(cache) == 0
        assert list(cache.quarantine_dir.glob("old.schema.json"))

    def test_checksum_mismatch_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.store("k1", {"value": 42})
        path = cache._path("k1")
        tampered = path.read_text(encoding="utf-8").replace("42", "43")
        path.write_text(tampered, encoding="utf-8")
        assert cache.load("k1") is None
        assert list(cache.quarantine_dir.glob("k1.checksum.json"))

    def test_payload_checksum_excludes_itself(self):
        payload = {"value": 1}
        digest = payload_checksum(payload)
        assert payload_checksum(dict(payload, checksum=digest)) == digest

    def test_clear_sweeps_tmp_and_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("k1", {"value": 1})
        (tmp_path / "stray.12345.deadbeef.tmp").write_text("partial")
        cache._path("bad").write_text("{not json", encoding="utf-8")
        cache.load("bad")  # quarantined
        cache.clear()
        assert len(cache) == 0
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(cache.quarantine_dir.glob("*.json")) == []

    def test_store_uses_unique_tmp_names(self, tmp_path, monkeypatch):
        # Two writers of one key must never share a tmp path: each store
        # draws a fresh uuid suffix (plus the pid) for its tmp file.
        import uuid

        cache = ResultCache(tmp_path)
        produced = []
        real_uuid4 = uuid.uuid4

        def spy():
            value = real_uuid4()
            produced.append(value.hex[:8])
            return value

        monkeypatch.setattr(uuid, "uuid4", spy)
        cache.store("k1", {"value": 2})
        cache.store("k1", {"value": 3})
        assert len(produced) == 2
        assert len(set(produced)) == 2  # distinct suffix per store
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.load("k1")["value"] == 3


# ----------------------------------------------------------------------
# Executor failure wrapping and state snapshots
# ----------------------------------------------------------------------

class TestExecutor:
    def test_parallel_failure_wrapped_with_frame_identity(self):
        def fn(task):
            if task == 2:
                raise ValueError("boom")
            return task * 10

        with pytest.raises(FrameExecutionError) as excinfo:
            run_frames(fn, [0, 1, 2, 3], jobs=2,
                       task_info=lambda task, _: (task, 100 + task))
        err = excinfo.value
        assert err.index == 2
        assert err.seed == 102
        assert isinstance(err.__cause__, ValueError)
        assert set(err.completed) <= {0, 1, 3}
        assert all(err.completed[k] == k * 10 for k in err.completed)

    def test_serial_failure_propagates_unwrapped(self):
        def fn(task):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            run_frames(fn, [0], jobs=1)

    def test_lru_snapshot_restore_round_trip(self):
        cache = LRUCache(4 * 128, 128)
        cache.access_many([1, 2, 3, 4, 5], write=True)
        snapshot = cache.snapshot()
        cache.access_many([6, 7, 8])
        cache.restore(snapshot)
        twin = LRUCache(4 * 128, 128)
        twin.access_many([1, 2, 3, 4, 5], write=True)
        assert cache.snapshot() == twin.snapshot()

    def test_warm_crop_cache_run_heals_identically(self):
        with faults.active(None):
            clean = RenderSession(SCENE, warm_crop_cache=True).run(
                n_views=N_VIEWS)
        session = RenderSession(SCENE, warm_crop_cache=True)
        with faults.active(FaultPlan.parse("flushplan:raise,times=2")):
            chaos = session.run(n_views=N_VIEWS)
        assert chaos.aggregates() == clean.aggregates()
        assert chaos.incidents()

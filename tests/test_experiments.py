"""Experiment modules: structure and qualitative claims on small scenes.

Experiments run on the two synthetic (smallest) Table II scenes to stay
fast; the benchmark suite covers the full set.
"""

import pytest

from repro.experiments import (
    fig01_unit_counts,
    fig05_sw_vs_hw,
    fig06_utilization,
    fig07_frags_per_pixel,
    fig08_cuda_early_term,
    fig09_warp_occupancy,
    fig10_inshader,
    fig11_multipass,
    fig16_speedup,
    fig17_end_to_end,
    fig18_reduction,
    fig19_energy,
    fig21_et_ratio,
    fig22_gscore,
    tables,
)
from repro.experiments.runner import format_table, geomean, get_scenario

SMALL = ["lego", "palace"]


class TestRunnerHelpers:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5]], title="T")
        assert "T" in text and "2.50" in text

    def test_scenario_cached(self):
        a = get_scenario("lego")
        b = get_scenario("lego")
        assert a is b


class TestFig01:
    def test_static_data(self):
        data = fig01_unit_counts.run()
        rows = data["rows"]
        assert len(rows) == 4
        assert rows[0]["shading_units"] == 3584
        assert rows[-1]["rops"] == 176
        # The figure's message: shader growth outpaces ROP growth.
        assert rows[-1]["shading_norm"] > 2 * rows[-1]["rop_norm"]


class TestFig05:
    def test_breakdowns(self):
        data = fig05_sw_vs_hw.run(scenes=SMALL, devices=("orin",))
        for scene, d in data["orin"].items():
            assert d["cuda_total"] > 0 and d["opengl_total"] > 0
            # Hardware preprocessing avoids duplication: cheaper.
            assert (d["opengl"]["preprocess"] < d["cuda"]["preprocess"])
            assert d["opengl"]["sort"] < d["cuda"]["sort"]

    def test_rtx3090_faster_than_orin(self):
        data = fig05_sw_vs_hw.run(scenes=["lego"])
        assert (data["rtx3090"]["lego"]["opengl_total"]
                < data["orin"]["lego"]["opengl_total"])


class TestFig06:
    def test_rop_bound(self):
        data = fig06_utilization.run(scenes=SMALL)
        for scene, util in data.items():
            assert util["bottleneck"] in ("crop", "prop")
            assert util["crop"] > util["sm"]
            assert util["crop"] > util["raster"]
            assert util["prop"] > 0.5


class TestFig07:
    def test_reduction(self):
        data = fig07_frags_per_pixel.run(scene="lego")
        s = data["stats"]
        assert s["mean_with"] < s["mean_without"]
        assert s["reduction"] > 1.0
        assert data["without_et"].shape == data["with_et"].shape

    def test_heatmap_renders(self):
        data = fig07_frags_per_pixel.run(scene="lego")
        art = fig07_frags_per_pixel.ascii_heatmap(data["without_et"])
        assert len(art.splitlines()) > 3


class TestFig08And09:
    def test_speedup_below_reduction(self):
        data = fig08_cuda_early_term.run(scenes=SMALL)
        for scene, d in data.items():
            assert 1.0 <= d["speedup"] <= d["frag_reduction"] + 1e-9

    def test_blend_fraction_under_40pct(self):
        """Paper: < 40% of threads blend across all scenes."""
        data = fig09_warp_occupancy.run(scenes=SMALL)
        for scene, frac in data.items():
            assert 0.0 < frac < 0.40


class TestFig10:
    def test_interlock_penalty(self):
        data = fig10_inshader.run(scenes=SMALL)
        for scene, d in data.items():
            assert d["interlock"] > 1.5
            assert d["no_interlock"] < d["interlock"]


class TestFig11:
    def test_sweep_shape(self):
        data = fig11_multipass.run(scenes=["lego"], pass_counts=(1, 2, 5, 20))
        sweep = data["lego"]
        assert sweep[1] == pytest.approx(1.0)
        # Overhead dominates small scenes at very high pass counts.
        assert sweep[20] < sweep[2] + 0.5


class TestFig16To19:
    def test_variant_ordering(self):
        data = fig16_speedup.run(scenes=SMALL)
        for scene in SMALL:
            d = data[scene]
            assert d["baseline"] == pytest.approx(1.0)
            assert d["het+qm"] > d["het"] > 1.0
            assert d["het+qm"] > d["qm"] > 1.0
        assert data["geomean"]["het+qm"] > 1.5

    def test_end_to_end(self):
        data = fig17_end_to_end.run(scenes=SMALL)
        for scene in SMALL:
            assert data[scene]["speedup_vs_hw"] > 1.0
            assert data[scene]["fps"] > 0

    def test_reduction_hierarchy(self):
        data = fig18_reduction.run(scenes=SMALL)
        for scene in SMALL:
            d = data[scene]
            assert d["baseline"]["fragment_reduction"] == pytest.approx(1.0)
            assert (d["het+qm"]["fragment_reduction"]
                    > d["het"]["fragment_reduction"] > 1.0)

    def test_energy(self):
        data = fig19_energy.run(scenes=SMALL)
        for scene in SMALL:
            assert data["per_scene"][scene] > 1.0
        assert data["geomean"] > 1.0


class TestFig21And22:
    def test_et_ratio_viewpoints(self):
        data = fig21_et_ratio.run(scenes=["lego"], n_views=4)
        d = data["lego"]
        assert len(d["ratios"]) == 4
        assert d["min"] <= d["mean"] <= d["max"]
        assert d["mean"] > 1.0

    def test_gscore_wins(self):
        data = fig22_gscore.run(scenes=SMALL)
        for scene in SMALL:
            assert data["per_scene"][scene] > 1.0


class TestTables:
    def test_table1(self):
        t = tables.table1()
        assert t["# SIMT Cores"] == 16
        assert t["ROP Throughput (quads/cycle, RGBA16F)"] == 2.0

    def test_table2(self):
        rows = tables.table2()
        assert len(rows) == 8
        names = {r["scene"] for r in rows}
        assert "kitchen" in names and "building" in names

    def test_table3(self):
        t = tables.table3()
        assert t["Total (KB)"] == pytest.approx(24.92, abs=0.01)

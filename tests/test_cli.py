"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_render_args(self):
        args = build_parser().parse_args(
            ["render", "--scene", "lego", "--out", "x.ppm"])
        assert args.scene == "lego"
        assert args.out == "x.ppm"

    def test_rejects_unknown_scene(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "--scene", "atrium"])

    def test_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--scene", "lego", "--variant", "turbo"])

    def test_trajectory_args(self):
        args = build_parser().parse_args(
            ["trajectory", "--scene", "train", "--backend", "hw:het+qm",
             "--views", "24", "--jobs", "4"])
        assert args.scene == "train"
        assert args.backend == "hw:het+qm"
        assert args.views == 24
        assert args.jobs == 4
        assert args.baseline == "auto"

    def test_trajectory_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trajectory", "--scene", "train", "--backend", "vulkan"])


class TestCommands:
    def test_list_scenes(self, capsys):
        assert main(["list-scenes"]) == 0
        out = capsys.readouterr().out
        assert "kitchen" in out and "building" in out

    def test_render(self, tmp_path, capsys):
        out_path = tmp_path / "lego.ppm"
        assert main(["render", "--scene", "lego", "--out",
                     str(out_path)]) == 0
        assert out_path.exists()
        assert out_path.read_bytes()[:2] == b"P6"
        assert "early-termination ratio" in capsys.readouterr().out

    def test_simulate_single(self, capsys):
        assert main(["simulate", "--scene", "palace", "--variant",
                     "het"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out
        assert "HET=on" in out

    def test_simulate_all(self, capsys):
        assert main(["simulate", "--scene", "palace", "--all"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "het+qm" in out

    def test_experiment_fig01(self, capsys):
        assert main(["experiment", "fig01"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_trajectory(self, capsys):
        assert main(["trajectory", "--scene", "lego", "--backend",
                     "hw:het+qm", "--views", "2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Trajectory: lego / hw:het+qm" in out
        assert "geomean_speedup" in out
        assert "fps_p50" in out

    def test_trajectory_disk_cache(self, tmp_path, capsys):
        argv = ["trajectory", "--scene", "lego", "--views", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "from disk cache" in capsys.readouterr().out

"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_render_args(self):
        args = build_parser().parse_args(
            ["render", "--scene", "lego", "--out", "x.ppm"])
        assert args.scene == "lego"
        assert args.out == "x.ppm"

    def test_rejects_unknown_scene(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "--scene", "atrium"])

    def test_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--scene", "lego", "--variant", "turbo"])


class TestCommands:
    def test_list_scenes(self, capsys):
        assert main(["list-scenes"]) == 0
        out = capsys.readouterr().out
        assert "kitchen" in out and "building" in out

    def test_render(self, tmp_path, capsys):
        out_path = tmp_path / "lego.ppm"
        assert main(["render", "--scene", "lego", "--out",
                     str(out_path)]) == 0
        assert out_path.exists()
        assert out_path.read_bytes()[:2] == b"P6"
        assert "early-termination ratio" in capsys.readouterr().out

    def test_simulate_single(self, capsys):
        assert main(["simulate", "--scene", "palace", "--variant",
                     "het"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out
        assert "HET=on" in out

    def test_simulate_all(self, capsys):
        assert main(["simulate", "--scene", "palace", "--all"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "het+qm" in out

    def test_experiment_fig01(self, capsys):
        assert main(["experiment", "fig01"]) == 0
        assert "Figure 1" in capsys.readouterr().out

"""The `repro bench` harness: timer, suites, reports, CLI."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.perf.report import (
    SCHEMA_VERSION,
    compare_to_baseline,
    load_report,
    suite_report,
    write_report,
)
from repro.perf.suite import SUITES, BenchResult, SuiteRun, run_suite
from repro.perf.timer import TimingResult, time_callable


class TestTimer:
    def test_counts_warmup_and_repeats(self):
        calls = []
        result = time_callable(lambda: calls.append(1), warmup=2, repeat=3)
        assert len(calls) == 5
        assert result.repeat == 3
        assert result.warmup == 2

    def test_median_with_fake_clock(self):
        ticks = iter([0.0, 10.0, 10.0, 11.0, 11.0, 16.0])
        result = time_callable(lambda: None, warmup=0, repeat=3,
                               clock=lambda: next(ticks), name="fake")
        assert result.times_s == [10.0, 1.0, 5.0]
        assert result.median_s == 5.0
        assert result.best_s == 1.0
        assert result.name == "fake"

    def test_per_second(self):
        result = TimingResult("t", [0.5], warmup=0)
        assert result.per_second(100) == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeat=0)
        with pytest.raises(ValueError):
            time_callable(lambda: None, warmup=-1)
        with pytest.raises(ValueError):
            TimingResult("t", [], warmup=0)


class TestSuites:
    def test_registry_names(self):
        assert {"rasterize", "reference", "hw", "trajectory"} <= set(SUITES)

    def test_unknown_suite(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite("nope")

    def test_bad_repeat(self):
        with pytest.raises(ValueError, match="repeat"):
            run_suite("rasterize", repeat=0)

    def test_rasterize_quick_reports_speedup(self):
        run = run_suite("rasterize", quick=True, repeat=1)
        assert run.suite == "rasterize"
        assert run.quick is True
        by_name = {r.name: r for r in run}
        assert set(by_name) == {"rasterize/batched", "rasterize/scalar"}
        batched = by_name["rasterize/batched"]
        assert batched.metrics["fragments"] > 0
        assert batched.metrics["fragments_per_sec"] > 0
        assert batched.metrics["speedup_vs_scalar"] > 0
        assert (batched.metrics["fragments"]
                == by_name["rasterize/scalar"].metrics["fragments"])


class TestReport:
    def _fake_run(self, median_s=0.25):
        timing = TimingResult("suite/bench", [median_s], warmup=0)
        return SuiteRun("fake", False, [
            BenchResult(timing, "lego", {"fragments": 1000,
                                         "fragments_per_sec": 4000.0})])

    def test_roundtrip(self, tmp_path):
        report = suite_report(self._fake_run())
        path = tmp_path / "BENCH_fake.json"
        write_report(report, path)
        loaded = load_report(path)
        assert loaded["schema"] == SCHEMA_VERSION
        assert loaded["suite"] == "fake"
        row = loaded["benchmarks"][0]
        assert row["name"] == "suite/bench"
        assert row["median_ms"] == pytest.approx(250.0)
        assert row["fragments"] == 1000

    def test_baseline_speedup(self):
        baseline = suite_report(self._fake_run(median_s=0.5))
        report = suite_report(self._fake_run(median_s=0.25),
                              baseline=baseline)
        assert report["speedup_vs_baseline"]["suite/bench"] == pytest.approx(2.0)

    def test_baseline_schema_mismatch(self):
        report = suite_report(self._fake_run())
        with pytest.raises(ValueError, match="schema"):
            compare_to_baseline(report, {"schema": -1, "benchmarks": []})

    def test_load_rejects_non_report(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_report(path)


class TestBenchCli:
    def test_quick_rasterize_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_rasterize.json"
        code = cli_main(["bench", "--suite", "rasterize", "--quick",
                         "--repeat", "1", "--out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["suite"] == "rasterize"
        assert report["quick"] is True
        names = [row["name"] for row in report["benchmarks"]]
        assert "rasterize/batched" in names
        captured = capsys.readouterr().out
        assert "Suite: rasterize" in captured
        assert str(out) in captured

    def test_baseline_comparison_in_output(self, tmp_path, capsys):
        out1 = tmp_path / "first.json"
        cli_main(["bench", "--suite", "rasterize", "--quick",
                  "--repeat", "1", "--out", str(out1)])
        capsys.readouterr()
        out2 = tmp_path / "second.json"
        code = cli_main(["bench", "--suite", "rasterize", "--quick",
                         "--repeat", "1", "--baseline", str(out1),
                         "--out", str(out2)])
        assert code == 0
        report = json.loads(out2.read_text())
        assert "speedup_vs_baseline" in report
        assert "rasterize/batched" in report["speedup_vs_baseline"]
        assert "vs baseline" in capsys.readouterr().out


class TestBenchSceneProfile:
    def test_bench_scene_registered(self):
        from repro.workloads.catalog import BENCH_SCENES, get_profile, scene_names
        assert "bench" in BENCH_SCENES
        profile = get_profile("bench")
        assert profile.scene_type == "bench"
        # Deliberately excluded from the paper's figure sweeps.
        assert "bench" not in scene_names(include_large=True)

    def test_bench_scene_builds_deterministically(self):
        from repro.workloads.catalog import build_scene
        a = build_scene("bench", seed=0)
        b = build_scene("bench", seed=0)
        assert len(a) == len(b) == 30000
        np.testing.assert_array_equal(a.positions, b.positions)


class TestCheckMode:
    def _tiny_report(self, medians):
        rows = [{"name": name, "scene": "s", "median_ms": ms,
                 "times_ms": [ms], "warmup": 0}
                for name, ms in medians.items()]
        return {"schema": SCHEMA_VERSION, "suite": "t", "quick": True,
                "benchmarks": rows}

    def test_check_report_flags_large_regressions_only(self):
        from repro.perf.report import check_report

        ref = self._tiny_report({"a": 10.0, "b": 10.0, "c": 10.0})
        fresh = self._tiny_report({"a": 10.4, "b": 16.0, "d": 99.0})
        regressions = check_report(fresh, ref, tolerance=0.5)
        assert regressions == [("b", pytest.approx(1.6))]
        assert check_report(fresh, ref, tolerance=0.7) == []
        with pytest.raises(ValueError):
            check_report(fresh, ref, tolerance=-1)

    def test_cli_check_exits_nonzero_on_regression(self, tmp_path,
                                                   monkeypatch):
        from repro.perf import suite as suite_mod
        from repro.perf.timer import TimingResult

        def fake_suite(quick, scene=None, repeat=None, ir=None,
                       coherence=None, swmodel=None):
            return [BenchResult(TimingResult("fake/x", [0.2], 0), "s", {})]

        monkeypatch.setitem(suite_mod.SUITES, "rasterize", fake_suite)
        monkeypatch.chdir(tmp_path)
        # First run writes the reference; the identical rerun passes.
        assert cli_main(["bench", "--suite", "rasterize", "--quick"]) == 0
        assert cli_main(["bench", "--suite", "rasterize", "--quick",
                         "--check"]) == 0

        def slow_suite(quick, scene=None, repeat=None, ir=None,
                       coherence=None, swmodel=None):
            return [BenchResult(TimingResult("fake/x", [2.0], 0), "s", {})]

        monkeypatch.setitem(suite_mod.SUITES, "rasterize", slow_suite)
        assert cli_main(["bench", "--suite", "rasterize", "--quick",
                         "--check"]) == 1

    def test_cli_check_requires_reference(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit, match="reference"):
            cli_main(["bench", "--suite", "rasterize", "--quick", "--check"])


class TestReportEnvironmentMetadata:
    def test_report_records_environment(self):
        from repro.perf.timer import TimingResult

        run = SuiteRun("t", True, [
            BenchResult(TimingResult("x", [0.1], 0), "s", {})])
        report = suite_report(run)
        assert report["cpu_count"] >= 1
        assert report["platform"]
        assert report["python"] and report["numpy"]


class TestTrajectorySuite:
    def test_quick_trajectory_rows(self):
        run = run_suite("trajectory", quick=True)
        names = [r.name for r in run]
        # Quick mode trades the variant sweep for scenario coverage: the
        # lego orbit plus the sparse aerial / dense garden profiles, two
        # hardware variants plus the software path's cold/warm pair each.
        assert names == [
            "trajectory/baseline:cold", "trajectory/het+qm:cold",
            "trajectory/cuda+et:cold", "trajectory/cuda+et:warm",
            "trajectory/aerial/baseline:cold",
            "trajectory/aerial/het+qm:cold",
            "trajectory/aerial/cuda+et:cold",
            "trajectory/aerial/cuda+et:warm",
            "trajectory/garden/baseline:cold",
            "trajectory/garden/het+qm:cold",
            "trajectory/garden/cuda+et:cold",
            "trajectory/garden/cuda+et:warm",
        ]
        assert [r.scene for r in run] == ["lego"] * 4 + ["aerial"] * 4 + \
            ["garden"] * 4
        for result in run:
            assert result.metrics["frames"] == 2
            assert result.metrics["ms_per_frame"] > 0
            assert result.metrics["frames_per_sec"] > 0
            # Serial stage breakdown rides along (new engines only).
            stage_keys = [k for k in result.metrics
                          if k.startswith("stage_")]
            assert "stage_rasterize_ms_per_frame" in stage_keys

    def test_scene_override_limits_rows(self):
        run = run_suite("trajectory", quick=True, scene="lego")
        assert [r.name for r in run] == [
            "trajectory/baseline:cold", "trajectory/het+qm:cold",
            "trajectory/cuda+et:cold", "trajectory/cuda+et:warm"]

"""Shared fixtures: small deterministic scenes sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians import Camera, synthetic
from repro.gaussians.preprocess import preprocess
from repro.render.splat_raster import rasterize_splats


@pytest.fixture(scope="session")
def small_cloud():
    """A shallow object + shell scene (~500 Gaussians)."""
    rng = np.random.default_rng(7)
    blob = synthetic.make_blob(rng, 300, center=(0, 0, 0), radius=0.45,
                               scale_mean=0.05)
    shell = synthetic.make_shell(rng, 200, center=(0, 0, 0), radius=2.6)
    return synthetic.compose(blob, shell)


@pytest.fixture(scope="session")
def small_camera():
    return Camera.look_at(eye=(0.0, 0.25, -2.0), target=(0, 0, 0),
                          width=96, height=96)


@pytest.fixture(scope="session")
def small_stream(small_cloud, small_camera):
    pre = preprocess(small_cloud, small_camera)
    return rasterize_splats(pre.splats, small_camera.width,
                            small_camera.height)


@pytest.fixture(scope="session")
def small_pre(small_cloud, small_camera):
    return preprocess(small_cloud, small_camera)


@pytest.fixture(scope="session")
def deep_cloud():
    """Depth-stacked opaque layers: saturates pixels, exercises HET/QM."""
    rng = np.random.default_rng(11)
    layers = synthetic.make_layered_surfaces(
        rng, 900, center=(0, 0, 0), extent=0.9, n_layers=7,
        layer_spacing=0.25, scale_mean=0.06, opacity_low=0.7,
        opacity_high=0.98)
    return layers


@pytest.fixture(scope="session")
def deep_camera():
    return Camera.look_at(eye=(0.0, 0.1, -2.2), target=(0, 0, 0),
                          width=96, height=96)


@pytest.fixture(scope="session")
def deep_pre(deep_cloud, deep_camera):
    return preprocess(deep_cloud, deep_camera)


@pytest.fixture(scope="session")
def deep_stream(deep_cloud, deep_camera):
    pre = preprocess(deep_cloud, deep_camera)
    return rasterize_splats(pre.splats, deep_camera.width,
                            deep_camera.height)

"""LRU cache model."""

import numpy as np
import pytest

from repro.hwmodel.caches import LRUCache


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(4 * 128, 128)
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.misses == 1 and cache.hits == 1

    def test_same_line_aliases(self):
        cache = LRUCache(4 * 128, 128)
        cache.access(0)
        assert cache.access(127) is True   # same 128B line
        assert cache.access(128) is False  # next line

    def test_capacity_eviction(self):
        cache = LRUCache(2 * 128, 128)
        cache.access_line(0)
        cache.access_line(1)
        cache.access_line(2)  # evicts 0
        assert cache.access_line(0) is False
        assert cache.evictions >= 1

    def test_lru_order(self):
        cache = LRUCache(2 * 128, 128)
        cache.access_line(0)
        cache.access_line(1)
        cache.access_line(0)  # refresh 0; 1 becomes LRU
        cache.access_line(2)  # evicts 1
        assert cache.access_line(0) is True
        assert cache.access_line(1) is False

    def test_dirty_writeback(self):
        cache = LRUCache(1 * 128, 128)
        cache.access_line(0, write=True)
        cache.access_line(1)  # evicts dirty line 0
        assert cache.writebacks == 1

    def test_flush_counts_dirty(self):
        cache = LRUCache(4 * 128, 128)
        cache.access_line(0, write=True)
        cache.access_line(1, write=False)
        cache.flush()
        assert cache.writebacks == 1
        assert len(cache) == 0

    def test_access_many(self):
        cache = LRUCache(8 * 128, 128)
        assert cache.access_many([0, 1, 2, 0]) == 3

    def test_reset_counters(self):
        cache = LRUCache(4 * 128, 128)
        cache.access_line(0)
        cache.reset_counters()
        assert cache.misses == 0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            LRUCache(0, 128)
        with pytest.raises(ValueError):
            LRUCache(64, 128)

    def test_access_segmented_matches_access_many(self):
        """One segmented replay == per-segment access_many calls exactly:
        per-segment misses, counters, and final LRU state."""
        rng = np.random.default_rng(3)
        tags = rng.integers(0, 40, size=500)
        splits = np.sort(rng.choice(np.arange(1, 500), size=19,
                                    replace=False))
        splits = np.concatenate(([0], splits, [500]))
        seg_cache = LRUCache(16 * 128, 128)
        ref_cache = LRUCache(16 * 128, 128)
        seg_misses = seg_cache.access_segmented(tags, splits, write=True)
        ref_misses = [ref_cache.access_many(tags[s:e], write=True)
                      for s, e in zip(splits[:-1], splits[1:])]
        assert seg_misses.tolist() == ref_misses
        for counter in ("hits", "misses", "evictions", "writebacks"):
            assert getattr(seg_cache, counter) == getattr(ref_cache, counter)
        assert list(seg_cache._lines.items()) == list(ref_cache._lines.items())

    def test_access_segmented_empty_segments(self):
        cache = LRUCache(4 * 128, 128)
        misses = cache.access_segmented(
            np.asarray([5, 5]), np.asarray([0, 0, 2, 2]))
        assert misses.tolist() == [0, 1, 0]

    def test_access_segmented_rejects_bad_splits(self):
        cache = LRUCache(4 * 128, 128)
        with pytest.raises(ValueError):
            cache.access_segmented(np.asarray([1, 2]), np.asarray([0, 1]))
        with pytest.raises(ValueError):
            cache.access_segmented(np.asarray([1, 2]), np.asarray([0, 2, 1]))

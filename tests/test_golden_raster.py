"""Golden equivalence: the batched rasteriser vs the scalar seed loop.

The batched tile-binned rasteriser must emit a *bit-identical*
FragmentStream to the per-splat golden loop — same fragments, same order,
same float32 alpha bits — on every scene, including degenerate ones.
"""

import numpy as np
import pytest

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.preprocess import preprocess
from repro.gaussians.projection import project_gaussians
from repro.render.splat_raster import (
    TileBinning,
    rasterize_splats,
    rasterize_splats_scalar,
)
from repro.workloads.catalog import build_scene, get_profile

GOLDEN_SCENES = ("lego", "palace", "train")


def assert_streams_bit_identical(batched, scalar):
    assert batched.prim_ids.dtype == scalar.prim_ids.dtype == np.int32
    assert batched.x.dtype == scalar.x.dtype == np.int32
    assert batched.y.dtype == scalar.y.dtype == np.int32
    assert batched.alphas.dtype == scalar.alphas.dtype == np.float32
    assert len(batched) == len(scalar)
    np.testing.assert_array_equal(batched.prim_ids, scalar.prim_ids)
    np.testing.assert_array_equal(batched.x, scalar.x)
    np.testing.assert_array_equal(batched.y, scalar.y)
    # Compare alpha *bit patterns*: equality must hold to the last ulp.
    np.testing.assert_array_equal(batched.alphas.view(np.uint32),
                                  scalar.alphas.view(np.uint32))
    assert batched.width == scalar.width
    assert batched.height == scalar.height


def _scene_splats(name, seed=0):
    profile = get_profile(name)
    cloud = build_scene(profile, seed=seed)
    camera = profile.camera()
    return preprocess(cloud, camera).splats, camera.width, camera.height


def _cloud(positions, scales, quaternions=None, opacities=0.9):
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    n = positions.shape[0]
    scales = np.broadcast_to(np.asarray(scales, dtype=float), (n, 3)).copy()
    if quaternions is None:
        quaternions = np.tile([1.0, 0, 0, 0], (n, 1))
    opacities = np.broadcast_to(np.asarray(opacities, dtype=float), (n,)).copy()
    return GaussianCloud(
        positions=positions, scales=scales, quaternions=quaternions,
        opacities=opacities, sh=np.zeros((n, 1, 3)))


@pytest.fixture(scope="module")
def cam96():
    return Camera.look_at(eye=(0, 0, -2), target=(0, 0, 0), width=96,
                          height=96)


class TestGoldenScenes:
    @pytest.mark.parametrize("ir", ("frameir", "legacy"))
    @pytest.mark.parametrize("scene", GOLDEN_SCENES)
    def test_bit_identical_on_catalog_scene(self, scene, ir):
        # The ir knob only selects the digestion structure riding on the
        # stream; the emitted fragment arrays must stay bit-identical to
        # the scalar golden loop in every mode.
        splats, w, h = _scene_splats(scene)
        batched = rasterize_splats(splats, w, h, ir=ir)
        assert (batched.frameir is not None) == (ir == "frameir")
        assert_streams_bit_identical(batched,
                                     rasterize_splats_scalar(splats, w, h))

    def test_bit_identical_on_bench_scene_subset(self):
        # The bench scene's statistics (many small splats) differ from the
        # Table II realisations; cover them with a trimmed subset.
        splats, w, h = _scene_splats("bench")
        subset = splats.subset(np.arange(0, len(splats), 7))
        assert_streams_bit_identical(rasterize_splats(subset, w, h),
                                     rasterize_splats_scalar(subset, w, h))


class TestGoldenAdversarial:
    def test_rotated_anisotropic_splats(self, cam96):
        rng = np.random.default_rng(42)
        n = 120
        quats = rng.normal(size=(n, 4))
        quats /= np.linalg.norm(quats, axis=1, keepdims=True)
        scales = np.stack([
            rng.uniform(0.005, 0.2, n),
            rng.uniform(0.005, 0.02, n),
            rng.uniform(0.005, 0.08, n),
        ], axis=1)
        cloud = GaussianCloud(
            positions=rng.uniform(-1.2, 1.2, size=(n, 3)) * [1, 1, 0.5],
            scales=scales, quaternions=quats,
            opacities=rng.uniform(0.05, 1.0, n), sh=np.zeros((n, 1, 3)))
        splats = project_gaussians(cloud, cam96)
        assert_streams_bit_identical(rasterize_splats(splats, 96, 96),
                                     rasterize_splats_scalar(splats, 96, 96))

    def test_axis_aligned_splats_hit_zero_projection_path(self, cam96):
        # Isotropic covariances give exactly axis-aligned OBB axes, so one
        # slab constraint has a zero x-coefficient per row.
        cloud = _cloud([[0, 0, 0], [0.4, -0.3, 0.2], [-0.6, 0.5, 0.1]],
                       scales=0.08)
        splats = project_gaussians(cloud, cam96)
        assert (splats.axes[:, :, 0] == 0).any()
        assert_streams_bit_identical(rasterize_splats(splats, 96, 96),
                                     rasterize_splats_scalar(splats, 96, 96))

    def test_edge_straddling_and_offscreen(self, cam96):
        cloud = _cloud([[1.15, 0, 0], [-1.15, 0, 0], [0, 1.15, 0],
                        [0, -1.15, 0], [5.0, 0, 0], [0, 0, -3.0]],
                       scales=0.1)
        splats = project_gaussians(cloud, cam96)
        assert_streams_bit_identical(rasterize_splats(splats, 96, 96),
                                     rasterize_splats_scalar(splats, 96, 96))

    def test_subpixel_splats(self, cam96):
        rng = np.random.default_rng(3)
        cloud = _cloud(rng.uniform(-0.5, 0.5, size=(60, 3)), scales=0.002,
                       opacities=0.7)
        splats = project_gaussians(cloud, cam96)
        assert_streams_bit_identical(rasterize_splats(splats, 96, 96),
                                     rasterize_splats_scalar(splats, 96, 96))

    def test_empty_input(self, cam96):
        splats = project_gaussians(_cloud([0, 0, 0], 0.05), cam96)
        empty = splats.subset(np.array([], dtype=int))
        batched = rasterize_splats(empty, 96, 96)
        scalar = rasterize_splats_scalar(empty, 96, 96)
        assert len(batched) == len(scalar) == 0
        assert isinstance(batched.binning, TileBinning)
        assert batched.binning.n_pairs == 0


class TestGoldenDegenerate:
    """A screen-sized splat exercising the ``max_fragments`` valve."""

    def _screen_splats(self, cam96):
        # One splat covering the whole 96x96 framebuffer plus normal ones.
        cloud = _cloud([[0, 0, 0.5], [0.1, 0.1, 0], [-0.2, 0, 0.1]],
                       scales=[[2.5, 2.5, 2.5], [0.05, 0.05, 0.05],
                               [0.05, 0.05, 0.05]])
        return project_gaussians(cloud, cam96)

    def test_both_paths_raise_memory_error(self, cam96):
        splats = self._screen_splats(cam96)
        with pytest.raises(MemoryError, match="max_fragments"):
            rasterize_splats(splats, 96, 96, max_fragments=100)
        with pytest.raises(MemoryError, match="max_fragments"):
            rasterize_splats_scalar(splats, 96, 96, max_fragments=100)

    def test_guard_boundary_is_identical(self, cam96):
        splats = self._screen_splats(cam96)
        total = len(rasterize_splats(splats, 96, 96))
        # Exactly at the limit neither raises; one below both raise.
        assert len(rasterize_splats(splats, 96, 96, max_fragments=total)) == total
        with pytest.raises(MemoryError):
            rasterize_splats(splats, 96, 96, max_fragments=total - 1)
        with pytest.raises(MemoryError):
            rasterize_splats_scalar(splats, 96, 96, max_fragments=total - 1)

    def test_bit_identical_with_headroom(self, cam96):
        splats = self._screen_splats(cam96)
        assert_streams_bit_identical(rasterize_splats(splats, 96, 96),
                                     rasterize_splats_scalar(splats, 96, 96))


class TestTileBinning:
    def test_pairs_cover_fragment_tiles(self, cam96):
        splats, w, h = _scene_splats("lego")
        stream = rasterize_splats(splats, w, h)
        binning = stream.binning
        # Every (prim, tile) pair observed in the fragments must appear in
        # the binning (binning may be a superset: tiles whose pixels all
        # fail the OBB test still get visited).
        observed = set(zip(stream.prim_ids.tolist(),
                           stream.tile_ids.tolist()))
        binned = set(zip(binning.pair_splat.tolist(),
                         binning.pair_tile.tolist()))
        assert observed <= binned

    def test_pairs_per_splat_counts(self, cam96):
        splats = project_gaussians(
            _cloud([[0, 0, 0], [5.0, 0, 0]], scales=0.05), cam96)
        stream = rasterize_splats(splats, 96, 96)
        counts = stream.binning.pairs_per_splat()
        assert counts.shape == (2,)
        assert counts[0] > 0
        assert counts[1] == 0  # off-screen splat rasterises nowhere

    def test_tile_ids_match_geometry(self, cam96):
        splats = project_gaussians(_cloud([0, 0, 0], 0.05), cam96)
        stream = rasterize_splats(splats, 96, 96)
        tiles_x = -(-96 // 16)
        expect = (stream.y.astype(np.int64) // 16) * tiles_x \
            + stream.x.astype(np.int64) // 16
        np.testing.assert_array_equal(stream.tile_ids, expect)

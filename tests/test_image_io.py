"""PPM image output helpers."""

import numpy as np
import pytest

from repro.render.image_io import read_ppm, to_uint8, write_ppm


class TestToUint8:
    def test_range(self):
        img = np.array([[[0.0, 0.5, 1.0]]])
        out = to_uint8(img, gamma=1.0)
        assert out.tolist() == [[[0, 128, 255]]]

    def test_clamps(self):
        img = np.array([[[-1.0, 2.0, 0.5]]])
        out = to_uint8(img, gamma=1.0)
        assert out[0, 0, 0] == 0
        assert out[0, 0, 1] == 255

    def test_gamma_brightens(self):
        img = np.full((1, 1, 3), 0.25)
        assert (to_uint8(img, gamma=2.2) > to_uint8(img, gamma=1.0)).all()

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            to_uint8(np.zeros((1, 1, 3)), gamma=0)


class TestPPMRoundtrip:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        image = rng.uniform(0, 1, size=(12, 9, 3))
        path = tmp_path / "out.ppm"
        write_ppm(path, image, gamma=1.0)
        back = read_ppm(path)
        assert back.shape == (12, 9, 3)
        np.testing.assert_array_equal(back, to_uint8(image, gamma=1.0))

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4)))

    def test_read_rejects_non_ppm(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"P3\n1 1\n255\n0 0 0")
        with pytest.raises(ValueError):
            read_ppm(path)

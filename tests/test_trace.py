"""Draw-call tracing: per-flush events, export, and analysis."""

import pytest

from repro.core.vrpipe import variant_config
from repro.hwmodel.pipeline import GraphicsPipeline
from repro.hwmodel.trace import DrawTrace


@pytest.fixture(scope="module")
def traced(deep_stream):
    trace = DrawTrace()
    config = variant_config("het+qm")
    result = GraphicsPipeline(config).draw(deep_stream, trace=trace)
    return trace, result


class TestDrawTrace:
    def test_events_recorded(self, traced):
        trace, result = traced
        assert len(trace) == result.stats.tc_flushes()

    def test_event_totals_match_stats(self, traced):
        trace, result = traced
        assert sum(e.n_quads for e in trace.events) == \
            result.stats.quads_rasterized
        assert sum(e.n_pairs for e in trace.events) == \
            result.stats.quads_merged_pairs
        assert sum(e.n_crop_quads for e in trace.events) == \
            result.stats.quads_to_crop

    def test_reasons_match_stats(self, traced):
        trace, result = traced
        reasons = trace.reasons()
        assert reasons.get("full", 0) == result.stats.tc_flush_full
        assert reasons.get("evict", 0) == result.stats.tc_flush_evict

    def test_merge_rate_in_range(self, traced):
        trace, _ = traced
        assert 0.0 < trace.merge_rate() < 1.0

    def test_histogram_covers_all(self, traced):
        trace, _ = traced
        histogram = trace.flush_size_histogram()
        assert sum(histogram.values()) == len(trace)

    def test_csv_export(self, traced, tmp_path):
        trace, _ = traced
        path = trace.to_csv(tmp_path / "trace.csv")
        lines = open(path).read().splitlines()
        assert lines[0].startswith("index,tile_id,reason")
        assert len(lines) == len(trace) + 1

    def test_csv_string(self):
        trace = DrawTrace()
        trace.record_flush(3, "full", 10, 8, 2, 6)
        text = trace.to_csv()
        assert "3,full,10,8,2,6" in text

    def test_summary(self, traced):
        trace, _ = traced
        text = trace.summary()
        assert "flushes" in text and "merge rate" in text

    def test_empty_summary(self):
        assert "empty" in DrawTrace().summary()

    def test_untraced_draw_unaffected(self, deep_stream):
        config = variant_config("het+qm")
        a = GraphicsPipeline(config).draw(deep_stream)
        trace = DrawTrace()
        b = GraphicsPipeline(config).draw(deep_stream, trace=trace)
        assert a.cycles == b.cycles

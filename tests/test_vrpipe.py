"""VR-Pipe public API: variants, hardware cost, end-to-end renderer."""

import numpy as np
import pytest

from repro.core.vrpipe import (
    VARIANTS,
    HardwareRenderer,
    hardware_cost_bytes,
    run_all_variants,
    speedups_over_baseline,
    variant_config,
)
from repro.hwmodel.config import rtx_3090


class TestVariantConfig:
    def test_flags(self):
        assert not variant_config("baseline").enable_het
        assert variant_config("qm").enable_qm
        assert variant_config("het").enable_het
        cfg = variant_config("het+qm")
        assert cfg.enable_het and cfg.enable_qm

    def test_device_passthrough(self):
        cfg = variant_config("het", device=rtx_3090())
        assert cfg.n_sm == 82 and cfg.enable_het

    def test_overrides(self):
        cfg = variant_config("baseline", termination_alpha=0.99)
        assert cfg.termination_alpha == 0.99

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown variant"):
            variant_config("turbo")

    def test_four_variants(self):
        assert set(VARIANTS) == {"baseline", "qm", "het", "het+qm"}


class TestHardwareCost:
    def test_matches_table3(self):
        cost = hardware_cost_bytes()
        assert cost["tgc"] == 24832          # 24.25 KB
        assert cost["qru"] == 688            # 688 B
        assert cost["total"] == 25520        # 24.92 KB
        assert cost["total"] / 1024 == pytest.approx(24.92, abs=0.01)


class TestSpeedups:
    def test_baseline_is_one(self, deep_stream):
        speedups = speedups_over_baseline(run_all_variants(deep_stream))
        assert speedups["baseline"] == pytest.approx(1.0)
        assert speedups["het+qm"] > 1.0

    def test_requires_baseline(self):
        with pytest.raises(KeyError):
            speedups_over_baseline({})


class TestHardwareRenderer:
    def test_end_to_end(self, small_cloud, small_camera):
        renderer = HardwareRenderer()
        result = renderer.render(small_cloud, small_camera)
        assert result.image.shape == (96, 96, 3)
        assert result.total_cycles > result.draw.cycles
        breakdown = result.breakdown_ms()
        assert set(breakdown) == {"preprocess", "sort", "rasterize"}
        assert result.fps() > 0

    def test_rasterize_dominates(self, small_cloud, small_camera):
        """The paper: rasterisation is >70% of hardware-path time."""
        renderer = HardwareRenderer(config=variant_config("baseline"))
        result = renderer.render(small_cloud, small_camera)
        b = result.breakdown_ms()
        total = sum(b.values())
        assert b["rasterize"] / total > 0.7

    def test_vrpipe_faster_than_baseline(self, small_cloud, small_camera):
        base = HardwareRenderer(config=variant_config("baseline"))
        vrp = HardwareRenderer(config=variant_config("het+qm"))
        t_base = base.render(small_cloud, small_camera).total_ms()
        t_vrp = vrp.render(small_cloud, small_camera).total_ms()
        assert t_vrp < t_base

    def test_het_image_matches_early_term_reference(self, deep_cloud,
                                                    deep_camera):
        from repro.render.reference import render_reference
        vrp = HardwareRenderer(config=variant_config("het+qm"))
        result = vrp.render(deep_cloud, deep_camera)
        exact = render_reference(deep_cloud, deep_camera)
        assert np.abs(result.image - exact.image).max() <= 0.004 + 1e-9

    def test_type_checks(self, small_camera):
        with pytest.raises(TypeError):
            HardwareRenderer().render("cloud", small_camera)
        with pytest.raises(TypeError):
            HardwareRenderer(config="nope")

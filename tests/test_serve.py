"""Serving-layer suite: admission, deadlines, breaker, residency, chaos.

The acceptance bar mirrors the engine's chaos suite, lifted to the
service boundary: under a seeded fault plan arming every injection
point, **every submitted request resolves** (zero lost), every completed
response's aggregates are bit-for-bit equal to a fault-free oracle run
of the same request configuration, and every non-completed outcome is a
typed rejection or failure.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults
from repro.engine.cache import ResultCache
from repro.engine.session import RenderSession
from repro.faults import FaultPlan
from repro.perf.suite import SERVICE_CHAOS_PLAN
from repro.serve import (
    FAILURE_REASONS,
    REJECT_REASONS,
    LoadSpec,
    RenderRequest,
    RenderService,
    SceneResidency,
    ServiceBreaker,
    run_load,
)

SCENE = "lego"


def make_service(**kw):
    kw.setdefault("workers", 1)
    kw.setdefault("queue_limit", 8)
    return RenderService(**kw)


def submit_running_blocker(svc, views=2):
    """Submit a request and wait until a worker has picked it up.

    Admission counts *queued* requests, so tests that want a known queue
    depth must first let the worker pop the blocker off the queue.
    """
    pending = svc.submit(RenderRequest(SCENE, views=views))
    deadline = time.monotonic() + 10
    while svc.queue_depth() > 0 and time.monotonic() < deadline:
        time.sleep(0.002)
    assert svc.queue_depth() == 0
    return pending


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------

class TestAdmission:
    def test_single_request_completes(self):
        with make_service() as svc:
            resp = svc.request(SCENE, views=1)
        assert resp.ok
        assert resp.aggregates["frames"] == 1
        assert resp.incident_summary["count"] == 0
        assert resp.latency_ms >= resp.queue_ms

    def test_queue_full_is_typed(self):
        with make_service(queue_limit=1, shed_at=False) as svc:
            blocker = submit_running_blocker(svc)
            queued = svc.submit(RenderRequest(SCENE, views=1))
            overflow = svc.submit(RenderRequest(SCENE, views=1))
            resp = overflow.result(timeout=1)
            assert resp.status == "rejected"
            assert resp.reason == "queue_full"
            assert blocker.result(timeout=120).ok
            assert queued.result(timeout=120).ok

    def test_shedding_spares_high_priority(self):
        with make_service(queue_limit=8, shed_at=1) as svc:
            blocker = submit_running_blocker(svc)
            queued = svc.submit(RenderRequest(SCENE, views=1))
            shed = svc.submit(RenderRequest(SCENE, views=1))
            vip = svc.submit(RenderRequest(SCENE, views=1,
                                           priority="high"))
            resp = shed.result(timeout=1)
            assert resp.status == "rejected"
            assert resp.reason == "shedding"
            assert blocker.result(timeout=120).ok
            assert queued.result(timeout=120).ok
            assert vip.result(timeout=120).ok

    def test_nonpositive_deadline_rejected_up_front(self):
        with make_service() as svc:
            resp = svc.submit(
                RenderRequest(SCENE, views=1, deadline_ms=0)).result(1)
        assert resp.status == "rejected"
        assert resp.reason == "deadline_unmeetable"

    def test_ewma_predicts_unmeetable_deadline(self):
        with make_service() as svc:
            assert svc.request(SCENE, views=1).ok  # seeds the EWMA model
            resp = svc.submit(
                RenderRequest(SCENE, views=4, deadline_ms=0.01)).result(1)
        assert resp.status == "rejected"
        assert resp.reason == "deadline_unmeetable"
        assert "estimated" in resp.detail

    def test_deadline_expiring_in_queue_fails_typed(self):
        # No completions yet, so the EWMA model cannot pre-reject; the
        # deadline then expires while the request waits behind the
        # blocker and must surface as a typed failure, never a loss.
        with make_service() as svc:
            blocker = submit_running_blocker(svc)
            doomed = svc.submit(RenderRequest(SCENE, views=1,
                                              deadline_ms=1.0))
            resp = doomed.result(timeout=120)
            assert resp.status == "failed"
            assert resp.reason == "deadline"
            assert blocker.result(timeout=120).ok

    def test_shutdown_rejects_new_submissions(self):
        svc = make_service()
        svc.close()
        resp = svc.submit(RenderRequest(SCENE, views=1)).result(1)
        assert resp.status == "rejected"
        assert resp.reason == "shutdown"

    def test_close_without_drain_resolves_queued_typed(self):
        svc = make_service()
        blocker = submit_running_blocker(svc)
        queued = svc.submit(RenderRequest(SCENE, views=1))
        svc.close(drain=False)
        resp = queued.result(timeout=1)
        assert resp.status == "rejected"
        assert resp.reason == "shutdown"
        assert blocker.result(timeout=120).ok  # in-flight still finishes

    def test_stats_snapshot_shape(self):
        with make_service() as svc:
            svc.request(SCENE, views=1)
            stats = svc.stats()
        assert stats["completed"] == 1
        assert stats["queue_depth"] == 0
        assert stats["latency_p50_ms"] > 0
        assert stats["breaker"]["state"] == "closed"
        assert stats["residency"]["resident"] == 1


# ----------------------------------------------------------------------
# Deadlines cut injected stalls via the engine watchdog
# ----------------------------------------------------------------------

class TestDeadlineWatchdog:
    def test_deadline_budget_cuts_injected_stall(self):
        # A 60 s stall against a 15 s deadline: the admission-side budget
        # becomes the session watchdog, the stall is cut at the next
        # checkpoint, and the frame heals through the ladder — the
        # response arrives inside the deadline with the timeout logged.
        with make_service() as svc:
            with faults.active(
                    FaultPlan.parse("digest:stall,delay=60000,times=1")):
                t0 = time.monotonic()
                resp = svc.request(SCENE, views=1, deadline_ms=15000,
                                   timeout=120)
                elapsed = time.monotonic() - t0
        assert resp.ok
        assert elapsed < 60.0
        assert resp.incident_summary["count"] >= 1
        assert any("WatchdogTimeout" in inc["error"]
                   for inc in resp.incidents)

    def test_strict_request_fails_typed(self):
        with make_service() as svc:
            with faults.active(
                    FaultPlan.parse("digest:raise,times=1")):
                resp = svc.request(SCENE, views=1, strict=True,
                                   timeout=120)
        assert resp.status == "failed"
        assert resp.reason == "strict"


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------

class TestBreaker:
    def test_transitions_are_count_based_and_deterministic(self):
        for _ in range(2):
            breaker = ServiceBreaker(window=4, open_threshold=0.5,
                                     cooldown=2)
            trail = []
            # 4 completions, 2 unhealthy -> opens exactly when the
            # window fills at 50% unhealthy.
            for unhealthy in (True, False, True, False):
                breaker.record("primary", unhealthy)
            trail.append(breaker.state)
            assert breaker.admission_mode() == "degraded"
            for _ in range(2):  # cooldown completions while open
                breaker.record("degraded", False)
            trail.append(breaker.state)
            assert breaker.admission_mode() == "probe"
            assert breaker.admission_mode() == "degraded"  # one probe max
            breaker.record("probe", False)
            trail.append(breaker.state)
            assert trail == ["open", "half_open", "closed"]
            assert [(t["from"], t["to"]) for t in breaker.transitions] == [
                ("closed", "open"), ("open", "half_open"),
                ("half_open", "closed")]
            assert [t["completions"] for t in breaker.transitions] == [
                4, 6, 7]

    def test_unhealthy_probe_reopens(self):
        breaker = ServiceBreaker(window=1, open_threshold=1.0, cooldown=1)
        breaker.record("primary", True)
        assert breaker.state == "open"
        breaker.record("degraded", False)
        assert breaker.state == "half_open"
        assert breaker.admission_mode() == "probe"
        breaker.record("probe", True)
        assert breaker.state == "open"

    def test_service_downgrades_and_recovers_bit_exact(self):
        # window=1/threshold=1: the first unhealthy completion opens the
        # breaker.  times=1 arms exactly one digest fault, so request 1
        # heals through an incident (unhealthy), request 2 is admitted
        # degraded and runs clean, request 3 probes clean and closes.
        # Serial worker + closed-loop submission make the trail exact.
        with faults.active(None):
            oracle = RenderSession(SCENE, baseline=None).run(
                n_views=1).aggregates()
        breaker = ServiceBreaker(window=1, open_threshold=1.0, cooldown=1)
        with make_service(breaker=breaker) as svc:
            with faults.active(FaultPlan.parse("digest:raise,times=1")):
                first = svc.request(SCENE, views=1, timeout=120)
                second = svc.request(SCENE, views=1, timeout=120)
                third = svc.request(SCENE, views=1, timeout=120)
        assert first.ok and first.incident_summary["count"] == 1
        assert not first.degraded
        assert second.ok and second.degraded
        assert third.ok and third.probe and not third.degraded
        assert breaker.state == "closed"
        assert [(t["from"], t["to"]) for t in breaker.transitions] == [
            ("closed", "open"), ("open", "half_open"),
            ("half_open", "closed")]
        # Degraded service is a routing decision, not a numeric one.
        assert first.aggregates == oracle
        assert second.aggregates == oracle
        assert third.aggregates == oracle


# ----------------------------------------------------------------------
# Scene residency
# ----------------------------------------------------------------------

class TestResidency:
    def test_lru_eviction_of_idle_residents(self):
        residency = SceneResidency(max_residents=1)
        a = residency.acquire(("a",), lambda: object())
        residency.release(a)
        b = residency.acquire(("b",), lambda: object())
        residency.release(b)
        stats = residency.stats()
        assert stats["evictions"] == 1
        assert stats["resident"] == 1
        assert stats["scenes"] == ["b"]

    def test_active_residents_survive_eviction_pressure(self):
        residency = SceneResidency(max_residents=1)
        a = residency.acquire(("a",), lambda: object())
        b = residency.acquire(("b",), lambda: object())  # over budget
        assert len(residency) == 2  # both active: budget is soft
        residency.release(a)
        residency.release(b)
        assert len(residency) == 1  # pressure resolved on release

    def test_hits_reuse_and_touch_mru(self):
        residency = SceneResidency(max_residents=2)
        a = residency.acquire(("a",), lambda: object())
        residency.release(a)
        b = residency.acquire(("b",), lambda: object())
        residency.release(b)
        again = residency.acquire(("a",), lambda: object())  # touch a
        residency.release(again)
        assert again is a
        c = residency.acquire(("c",), lambda: object())  # evicts b, not a
        residency.release(c)
        assert residency.stats()["scenes"] == ["a", "c"]
        assert residency.stats()["hits"] == 1

    def test_per_resident_lock_serialises_same_scene(self):
        residency = SceneResidency(max_residents=2)
        order = []
        first = residency.acquire(("s",), lambda: object())

        def second_user():
            resident = residency.acquire(("s",), lambda: object())
            order.append("second")
            residency.release(resident)

        thread = threading.Thread(target=second_user)
        thread.start()
        time.sleep(0.05)
        order.append("first")
        residency.release(first)
        thread.join(5)
        assert order == ["first", "second"]

    def test_service_reuses_residents_across_requests(self):
        with make_service(max_residents=2) as svc:
            assert svc.request(SCENE, views=1).ok
            assert svc.request(SCENE, views=1).ok
            stats = svc.stats()["residency"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1


# ----------------------------------------------------------------------
# ResultCache: real eviction + stats snapshot
# ----------------------------------------------------------------------

class TestResultCacheEviction:
    def test_lru_sweep_enforces_byte_budget(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)
        probe = ResultCache(tmp_path)  # no budget: measures entry size
        probe.store("probe", {"value": 0})
        entry_bytes = probe.stats()["bytes"]
        probe.clear()

        cache.max_bytes = int(2.5 * entry_bytes)  # room for two entries
        cache.store("k1", {"value": 1})
        time.sleep(0.02)  # mtime resolution
        cache.store("k2", {"value": 2})
        time.sleep(0.02)
        assert cache.load("k1") is not None  # touch k1: k2 becomes LRU
        time.sleep(0.02)
        cache.store("k3", {"value": 3})
        assert cache.counters["evicted"] == 1
        assert cache.load("k2") is None  # the untouched entry went
        assert cache.load("k1")["value"] == 1
        assert cache.load("k3")["value"] == 3

    def test_stats_snapshot(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("k1", {"value": 1})
        assert cache.load("k1") is not None
        assert cache.load("missing") is None
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(1 / 2)
        assert stats["evicted"] == 0

    def test_unbudgeted_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.store(f"k{i}", {"value": i})
        assert len(cache) == 5
        assert cache.counters["evicted"] == 0


# ----------------------------------------------------------------------
# Incident telemetry satellites
# ----------------------------------------------------------------------

class TestIncidentTelemetry:
    def test_incidents_carry_monotonic_timestamp(self):
        session = RenderSession(SCENE, baseline=None)
        with faults.active(FaultPlan.parse("digest:raise,times=1")):
            result = session.run(n_views=1)
        incidents = result.incidents()
        assert incidents and incidents[0]["ts_ms"] > 0

    def test_incident_summary_reports_healing_ms(self):
        session = RenderSession(SCENE, baseline=None)
        with faults.active(FaultPlan.parse("digest:raise,times=1")):
            result = session.run(n_views=1)
        summary = result.incident_summary()
        assert summary["healing_ms"] > 0
        assert summary["healing_ms"] == summary["wall_ms"]  # alias

    def test_caller_crop_cache_bypasses_disk_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        session = RenderSession(SCENE, baseline=None, result_cache=cache)
        crop = session.backend.new_crop_cache()
        first = session.run(n_views=1, crop_cache=crop)
        second = session.run(n_views=1, crop_cache=crop)
        assert not first.from_cache and not second.from_cache
        assert len(cache) == 0  # history-dependent runs are never stored


# ----------------------------------------------------------------------
# The chaos soak: no request lost, nothing silently wrong
# ----------------------------------------------------------------------

class TestChaosSoak:
    def test_mixed_fault_soak_loses_nothing_and_stays_bit_exact(
            self, tmp_path):
        spec = LoadSpec(clients=8, requests_per_client=2, scenes=(SCENE,),
                        views_choices=(1, 2), seed=13)
        # Fault-free oracle aggregates per distinct request config.
        oracles = {}
        with faults.active(None):
            for request in spec.all_requests():
                key = request.config_key()
                if key not in oracles:
                    oracles[key] = RenderSession(
                        request.scene, backend=request.backend,
                        baseline=request.baseline,
                        seed=request.seed).run(
                            n_views=request.views).aggregates()
        plan = FaultPlan.parse(SERVICE_CHAOS_PLAN)
        with faults.active(plan):
            with RenderService(workers=2, queue_limit=16,
                               result_cache=ResultCache(tmp_path)) as svc:
                report = run_load(svc, spec)
        kpis = report.kpis()
        assert kpis["submitted"] == 16
        assert kpis["lost"] == 0, "a request was lost under chaos"
        assert kpis["resolved"] == kpis["submitted"]
        by_id = {}
        for response in report.responses:
            assert response.request_id not in by_id, "duplicate resolution"
            by_id[response.request_id] = response
        requests = {f"c{c:02d}-r{p:02d}": request
                    for c in range(spec.clients)
                    for p, request in enumerate(spec.client_requests(c))}
        for request_id, response in by_id.items():
            request = requests[request_id]
            if response.status == "ok":
                assert response.aggregates == oracles[request.config_key()]
            elif response.status == "rejected":
                assert response.reason in REJECT_REASONS
            else:
                assert response.status == "failed"
                assert response.reason in FAILURE_REASONS

"""Fuzz/property tests: FrameIR-native software models vs the sort oracle.

The CUDA warp model (:mod:`repro.swrender.warp_model`) and the multi-pass
model (:mod:`repro.swopt.multipass`) each carry two engines behind the
``swmodel`` knob: the FrameIR-native path reads the (prim, tile) group
ranges / quad table plus digestion's cached pixel-sorted arrival chain,
while ``swmodel="legacy"`` is the retained fragment-sort oracle.  Both
must agree **bit for bit** on every observable: the
:class:`~repro.swrender.warp_model.WarpExecution` round and blend counts,
every :class:`~repro.swopt.multipass.MultipassResult` cycle (per batch,
per stencil update, total) and blended-fragment count, the sweep speedup
maps, and the :class:`~repro.swrender.tiling.TileAssignment` pair counts
of end-to-end renders.  Random splat scenes plus the library's five
digestion regimes — empty, single-pixel, max_fragments-clamped,
HET-terminated, warm handoff — pin the equivalence the same way
``test_frameir.py`` de-risked the digestion engines.
"""

import zlib

import numpy as np
import pytest

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.preprocess import preprocess
from repro.gaussians.projection import project_gaussians
from repro.render.frameir import FrameIR
from repro.render.splat_raster import rasterize_splats
from repro.swopt.multipass import multipass_sweep, run_multipass
from repro.swrender.renderer import CudaRenderer
from repro.swrender.warp_model import resolve_swmodel, simulate_tile_warps

PASS_COUNTS = (1, 2, 5, 7)
THRESHOLDS = (0.996, 0.9)


def fuzz_seed(tag, salt=0):
    """Process-independent fuzz seed (``hash()`` varies per interpreter)."""
    return zlib.crc32(f"{tag}:{salt}".encode()) & 0x7FFFFFFF


def random_cloud(rng, n, spread=1.1, scale_low=0.004, scale_high=0.16,
                 opacity_low=0.05, opacity_high=1.0):
    quats = rng.normal(size=(n, 4))
    quats /= np.linalg.norm(quats, axis=1, keepdims=True)
    scales = np.exp(rng.uniform(np.log(scale_low), np.log(scale_high),
                                size=(n, 3)))
    return GaussianCloud(
        positions=rng.uniform(-spread, spread, size=(n, 3)) * [1, 1, 0.6],
        scales=scales, quaternions=quats,
        opacities=rng.uniform(opacity_low, opacity_high, n),
        sh=np.zeros((n, 1, 3)))


def camera(width=112, height=96):
    return Camera.look_at(eye=(0, 0.1, -2.1), target=(0, 0, 0),
                          width=width, height=height)


def assert_warps_identical(a, b):
    assert a.rounds_no_et == b.rounds_no_et
    assert a.rounds_et == b.rounds_et
    assert a.blend_ops_no_et == b.blend_ops_no_et
    assert a.blend_ops_et == b.blend_ops_et


def assert_multipass_identical(a, b):
    assert a.n_passes == b.n_passes
    assert a.total_cycles == b.total_cycles
    assert a.batch_cycles == b.batch_cycles
    assert a.stencil_cycles == b.stencil_cycles
    assert a.fragments_blended == b.fragments_blended


def assert_stream_parity(stream):
    """Both engines agree exactly on every model output of one stream."""
    for threshold in THRESHOLDS:
        assert_warps_identical(
            simulate_tile_warps(stream, threshold, swmodel="frameir"),
            simulate_tile_warps(stream, threshold, swmodel="legacy"))
    for n in PASS_COUNTS:
        assert_multipass_identical(
            run_multipass(stream, n, swmodel="frameir"),
            run_multipass(stream, n, swmodel="legacy"))
    assert (multipass_sweep(stream, PASS_COUNTS, swmodel="frameir")
            == multipass_sweep(stream, PASS_COUNTS, swmodel="legacy"))


class TestSwmodelFuzz:
    def test_random_scenes_exact(self):
        rng = np.random.default_rng(fuzz_seed("swmodel"))
        for trial in range(6):
            n = int(rng.integers(20, 200))
            cloud = random_cloud(rng, n, opacity_low=0.3)
            cam = camera()
            pre = preprocess(cloud, cam)
            stream = rasterize_splats(pre.splats, cam.width, cam.height,
                                      ir="frameir")
            if len(stream) == 0:
                continue
            assert_stream_parity(stream)


class TestSwmodelRegimes:
    """The five stream regimes of the digestion oracle contract."""

    def test_empty_stream(self):
        cam = camera()
        splats = project_gaussians(
            random_cloud(np.random.default_rng(0), 4), cam).subset(
                np.array([], dtype=int))
        stream = rasterize_splats(splats, cam.width, cam.height,
                                  ir="frameir")
        assert len(stream) == 0
        assert isinstance(stream.frameir, FrameIR)
        for swmodel in ("frameir", "legacy"):
            warp = simulate_tile_warps(stream, swmodel=swmodel)
            assert (warp.rounds_no_et, warp.rounds_et,
                    warp.blend_ops_no_et, warp.blend_ops_et) == (0, 0, 0, 0)
            res = run_multipass(stream, 3, swmodel=swmodel)
            assert res.total_cycles == 0.0
            assert res.fragments_blended == 0

    def test_single_pixel_splats(self):
        """Subpixel splats: single-fragment quads and one-round tiles."""
        rng = np.random.default_rng(fuzz_seed("sw-single-pixel"))
        cloud = random_cloud(rng, 90, scale_low=0.0015, scale_high=0.003,
                             opacity_low=0.6)
        cam = camera()
        pre = preprocess(cloud, cam)
        stream = rasterize_splats(pre.splats, cam.width, cam.height,
                                  ir="frameir")
        assert len(stream) > 0
        assert_stream_parity(stream)

    def test_max_fragments_clamped(self):
        """At the max_fragments guard boundary the IR still rides along
        and both software models stay exact."""
        rng = np.random.default_rng(fuzz_seed("sw-clamp"))
        cloud = random_cloud(rng, 40, scale_low=0.05, scale_high=0.4)
        cam = camera()
        pre = preprocess(cloud, cam)
        total = len(rasterize_splats(pre.splats, cam.width, cam.height))
        assert total > 0
        stream = rasterize_splats(pre.splats, cam.width, cam.height,
                                  max_fragments=total, ir="frameir")
        assert isinstance(stream.frameir, FrameIR)
        assert_stream_parity(stream)

    def test_het_terminated(self, deep_stream):
        """Depth-stacked opaque layers saturate pixels: the warp model's
        per-pixel exit rounds are non-trivial and must match exactly."""
        warp = simulate_tile_warps(deep_stream, swmodel="frameir")
        assert warp.rounds_et < warp.rounds_no_et
        assert_stream_parity(deep_stream)

    def test_warm_handoff(self):
        """Whichever engine digests first (warming the stream's shared
        pixel-sort/arrival caches), the other must reproduce it exactly."""
        rng = np.random.default_rng(fuzz_seed("sw-warm"))
        cloud = random_cloud(rng, 80, opacity_low=0.55)
        cam = camera()
        pre = preprocess(cloud, cam)

        stream_a = rasterize_splats(pre.splats, cam.width, cam.height,
                                    ir="frameir")
        first_a = simulate_tile_warps(stream_a, swmodel="frameir")
        second_a = simulate_tile_warps(stream_a, swmodel="legacy")
        assert_warps_identical(first_a, second_a)

        stream_b = rasterize_splats(pre.splats, cam.width, cam.height,
                                    ir="frameir")
        first_b = simulate_tile_warps(stream_b, swmodel="legacy")
        second_b = simulate_tile_warps(stream_b, swmodel="frameir")
        assert_warps_identical(second_b, first_b)
        assert_warps_identical(first_a, first_b)

        mp_a = run_multipass(stream_a, 4, swmodel="frameir")
        mp_b = run_multipass(stream_b, 4, swmodel="legacy")
        assert_multipass_identical(mp_a, mp_b)


class TestCudaRendererParity:
    def test_end_to_end_exact(self):
        """Whole CudaRenderer frames agree across engines: kernel cycles,
        warp counts, tile-duplication pair counts, and the (lazy) blended
        image."""
        rng = np.random.default_rng(fuzz_seed("sw-e2e"))
        cloud = random_cloud(rng, 120, opacity_low=0.4)
        cam = camera()
        res_ir = CudaRenderer(swmodel="frameir").render(cloud, cam)
        res_legacy = CudaRenderer(swmodel="legacy").render(cloud, cam)
        assert_warps_identical(res_ir.warp_exec, res_legacy.warp_exec)
        assert res_ir.timing.total_cycles == res_legacy.timing.total_cycles
        assert (res_ir.timing.breakdown_ms()
                == res_legacy.timing.breakdown_ms())
        np.testing.assert_array_equal(res_ir.tiling.pairs_per_splat,
                                      res_legacy.tiling.pairs_per_splat)
        assert res_ir.tiling.n_pairs == res_legacy.tiling.n_pairs
        # The blend is deferred until the image is actually read.
        assert res_ir._image is None
        np.testing.assert_array_equal(res_ir.image, res_legacy.image)
        np.testing.assert_array_equal(res_ir.alpha, res_legacy.alpha)
        assert res_ir._image is not None


class TestSwmodelKnob:
    def test_resolve_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWMODEL", raising=False)
        assert resolve_swmodel() == "auto"
        monkeypatch.setenv("REPRO_SWMODEL", "legacy")
        assert resolve_swmodel() == "legacy"
        assert resolve_swmodel("frameir") == "frameir"
        with pytest.raises(ValueError, match="swmodel mode"):
            resolve_swmodel("warp")

    def test_frameir_mode_requires_ir(self):
        rng = np.random.default_rng(3)
        cloud = random_cloud(rng, 20, opacity_low=0.5)
        cam = camera()
        pre = preprocess(cloud, cam)
        bare = rasterize_splats(pre.splats, cam.width, cam.height,
                                ir="legacy")
        assert bare.frameir is None
        if len(bare):
            with pytest.raises(ValueError, match="frameir"):
                simulate_tile_warps(bare, swmodel="frameir")
            with pytest.raises(ValueError, match="frameir"):
                run_multipass(bare, 2, swmodel="frameir")
            # auto falls back to the oracle on bare streams.
            assert_warps_identical(
                simulate_tile_warps(bare, swmodel="auto"),
                simulate_tile_warps(bare, swmodel="legacy"))

    def test_env_frameir_default_stays_best_effort(self, monkeypatch):
        """A ``$REPRO_SWMODEL=frameir`` process default must not harden
        into a by-name requirement: bare (legacy-rasterised) streams keep
        digesting through the oracle fallback."""
        monkeypatch.setenv("REPRO_SWMODEL", "frameir")
        rng = np.random.default_rng(9)
        cloud = random_cloud(rng, 30, opacity_low=0.5)
        cam = camera()
        pre = preprocess(cloud, cam)
        bare = rasterize_splats(pre.splats, cam.width, cam.height,
                                ir="legacy")
        assert bare.frameir is None
        warp = simulate_tile_warps(bare)
        assert_warps_identical(warp, simulate_tile_warps(bare,
                                                         swmodel="legacy"))
        assert_multipass_identical(run_multipass(bare, 3),
                                   run_multipass(bare, 3, swmodel="legacy"))

    def test_renderer_validates_eagerly(self):
        with pytest.raises(ValueError, match="swmodel mode"):
            CudaRenderer(swmodel="warp")

"""Quickstart: build a scene, render it, and measure VR-Pipe's speedup.

Walks the library's main path end to end:

1. compose a synthetic 3D Gaussian scene;
2. render the ground-truth image with the reference renderer;
3. simulate the draw call on all four hardware variants
   (Baseline / QM / HET / HET+QM) and report speedups and image fidelity.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import run_all_variants, speedups_over_baseline
from repro.gaussians import Camera, synthetic
from repro.hwmodel.energy import efficiency_ratio
from repro.render import render_reference
from repro.render.image_io import write_ppm


def build_demo_scene(seed=0):
    """A small object in front of a layered backdrop (deep enough for HET)."""
    rng = np.random.default_rng(seed)
    backdrop = synthetic.make_layered_surfaces(
        rng, 1500, center=(0, 0, 0.8), extent=(1.4, 0.9), n_layers=8,
        layer_spacing=0.25, scale_mean=0.06, opacity_low=0.7)
    subject = synthetic.make_blob(
        rng, 500, center=(0, 0, -0.5), radius=0.4, scale_mean=0.05,
        base_color=(0.7, 0.45, 0.3))
    ground = synthetic.make_plane(
        rng, 300, center=(0, -0.6, 0.2), normal=(0, 1, 0), extent=2.0,
        base_color=(0.35, 0.4, 0.3))
    return synthetic.compose(subject, backdrop, ground)


def main():
    scene = build_demo_scene()
    camera = Camera.look_at(eye=(0.0, 0.3, -2.6), target=(0, 0, 0),
                            width=224, height=224)
    print(f"scene: {scene}")

    reference = render_reference(scene, camera)
    stream = reference.stream
    print(f"visible splats: {reference.preprocess.n_visible:,}   "
          f"fragments: {len(stream):,}   "
          f"early-termination ratio: {stream.termination_ratio():.2f}")

    results = run_all_variants(stream)
    speedups = speedups_over_baseline(results)
    print(f"\n{'variant':>9} {'cycles':>12} {'speedup':>8} "
          f"{'frags blended':>14} {'bottleneck':>11}")
    for name, res in results.items():
        print(f"{name:>9} {res.cycles:>12,.0f} {speedups[name]:>8.2f} "
              f"{res.stats.fragments_blended:>14,} "
              f"{res.stats.bottleneck():>11}")

    eff = efficiency_ratio(results["baseline"], results["het+qm"])
    print(f"\nenergy efficiency of HET+QM over baseline: {eff:.2f}x")

    # Fidelity: HET perturbs the image by at most the residual
    # transmittance (1 - 0.996); QM is bit-exact.
    et_image, _ = stream.blend_image(early_term=True)
    err = np.abs(reference.image - et_image).max()
    print(f"max image error from early termination: {err:.4f} "
          f"(bound: 0.004)")

    out = write_ppm("quickstart_render.ppm", reference.image)
    print(f"rendered frame written to {out}")


if __name__ == "__main__":
    main()

"""Scene-structure study: why outdoor captures gain more from VR-Pipe.

Reproduces the paper's cross-scene observation (Sections VI-B and VII-B) on
two Table II workloads: an outdoor scene (Train — deep stacked structure
with many Gaussians "beyond the surface") and an indoor one (Bonsai — a
central object inside a room shell).  For each, the script sweeps orbit
viewpoints, reports the early-termination ratio, and runs the HET+QM
pipeline to show the speedup tracks the ratio.

Run:  python examples/indoor_vs_outdoor.py
"""

from repro.core import run_variant
from repro.gaussians.preprocess import preprocess
from repro.render.splat_raster import rasterize_splats
from repro.workloads import build_scene, get_profile, scene_viewpoints


def analyse(scene_name, n_views=5):
    profile = get_profile(scene_name)
    cloud = build_scene(profile)
    print(f"\n=== {scene_name} ({profile.scene_type}; "
          f"{len(cloud):,} Gaussians at {profile.width}x{profile.height}) ===")
    print(f"{'view':>4} {'ET ratio':>9} {'base cycles':>12} "
          f"{'het+qm':>10} {'speedup':>8}")
    ratios = []
    speedups = []
    for k, camera in enumerate(scene_viewpoints(profile, n_views)):
        pre = preprocess(cloud, camera)
        stream = rasterize_splats(pre.splats, camera.width, camera.height)
        ratio = stream.termination_ratio()
        base = run_variant(stream, "baseline")
        vrp = run_variant(stream, "het+qm")
        speedup = base.cycles / vrp.cycles
        ratios.append(ratio)
        speedups.append(speedup)
        print(f"{k:>4} {ratio:>9.2f} {base.cycles:>12,.0f} "
              f"{vrp.cycles:>10,.0f} {speedup:>8.2f}")
    mean_ratio = sum(ratios) / len(ratios)
    mean_speedup = sum(speedups) / len(speedups)
    print(f"mean: ET ratio {mean_ratio:.2f}, speedup {mean_speedup:.2f}x")
    return mean_ratio, mean_speedup


def main():
    outdoor = analyse("train")
    indoor = analyse("bonsai")
    print("\n=== summary ===")
    print(f"train  (outdoor): ratio {outdoor[0]:.2f} -> {outdoor[1]:.2f}x")
    print(f"bonsai (indoor) : ratio {indoor[0]:.2f} -> {indoor[1]:.2f}x")
    if outdoor[1] > indoor[1]:
        print("outdoor structure converts to larger VR-Pipe gains, "
              "as in the paper.")


if __name__ == "__main__":
    main()

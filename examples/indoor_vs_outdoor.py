"""Scene-structure study: why outdoor captures gain more from VR-Pipe.

Reproduces the paper's cross-scene observation (Sections VI-B and VII-B) on
two Table II workloads: an outdoor scene (Train — deep stacked structure
with many Gaussians "beyond the surface") and an indoor one (Bonsai — a
central object inside a room shell).  Each scene runs as a multi-frame
:class:`~repro.engine.session.RenderSession` along its orbit trajectory:
the full VR-Pipe backend (``hw:het+qm``) renders every frame next to the
baseline hardware backend, so per-frame speedups and early-termination
ratios come straight from the trajectory records.

Run:  python examples/indoor_vs_outdoor.py
"""

from repro.engine import RenderSession
from repro.workloads import get_profile


def analyse(scene_name, n_views=5, jobs=2):
    profile = get_profile(scene_name)
    session = RenderSession(scene_name, backend="hw:het+qm",
                            baseline="hw:baseline")
    trajectory = session.run(n_views=n_views, jobs=jobs)
    print(f"\n=== {scene_name} ({profile.scene_type}; "
          f"{profile.n_gaussians:,} Gaussians at "
          f"{profile.width}x{profile.height}) ===")
    print(f"{'view':>4} {'ET ratio':>9} {'base cycles':>12} "
          f"{'het+qm':>10} {'speedup':>8}")
    for rec in trajectory.records:
        print(f"{rec.index:>4} {rec.et_ratio:>9.2f} "
              f"{rec.baseline_cycles:>12,.0f} {rec.cycles:>10,.0f} "
              f"{rec.speedup:>8.2f}")
    agg = trajectory.aggregates()
    print(f"mean ET ratio {agg['et_ratio_mean']:.2f}, "
          f"geomean speedup {agg['geomean_speedup']:.2f}x, "
          f"median {agg['fps_p50']:,.0f} FPS")
    return agg


def main():
    outdoor = analyse("train")
    indoor = analyse("bonsai")
    print("\n=== summary ===")
    print(f"train  (outdoor): ratio {outdoor['et_ratio_mean']:.2f} -> "
          f"{outdoor['geomean_speedup']:.2f}x")
    print(f"bonsai (indoor) : ratio {indoor['et_ratio_mean']:.2f} -> "
          f"{indoor['geomean_speedup']:.2f}x")
    if outdoor["geomean_speedup"] > indoor["geomean_speedup"]:
        print("outdoor structure converts to larger VR-Pipe gains, "
              "as in the paper.")


if __name__ == "__main__":
    main()

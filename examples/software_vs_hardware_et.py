"""Early termination three ways: CUDA, multi-pass OpenGL, and HET.

The paper's argument in one script.  On the same scene it compares every
early-termination strategy:

* the *potential* — the fragment-reduction ratio (Figure 8's upper bound);
* CUDA lockstep warps (Figure 8's realised speedup);
* multi-pass stencil rendering at several pass counts (Figure 11);
* VR-Pipe's hardware early termination (Figure 16),

showing HET realises most of the potential while the software schemes
leave it on the table.

Run:  python examples/software_vs_hardware_et.py
"""

from repro.core import run_variant
from repro.gaussians.preprocess import preprocess
from repro.render.splat_raster import rasterize_splats
from repro.swopt.multipass import multipass_sweep
from repro.swrender.warp_model import simulate_tile_warps
from repro.workloads import build_scene, get_profile


def main(scene_name="truck"):
    profile = get_profile(scene_name)
    cloud = build_scene(profile)
    camera = profile.camera()
    pre = preprocess(cloud, camera)
    stream = rasterize_splats(pre.splats, camera.width, camera.height)

    potential = stream.termination_ratio()
    print(f"scene: {scene_name}  fragments: {len(stream):,}")
    print(f"\nfragment-reduction potential of early termination: "
          f"{potential:.2f}x")

    warp_exec = simulate_tile_warps(stream)
    print(f"\nCUDA (lockstep warps)      : {warp_exec.et_speedup():.2f}x "
          f"rasterise speedup")
    print(f"  threads usefully blending: "
          f"{warp_exec.blending_thread_fraction() * 100:.0f}%")

    sweep = multipass_sweep(stream, [2, 5, 10, 20])
    best_n = max(sweep, key=sweep.get)
    print("\nmulti-pass OpenGL (Algorithm 1):")
    for n, s in sweep.items():
        marker = "  <- best" if n == best_n else ""
        print(f"  N={n:>2}: {s:.2f}x{marker}")

    base = run_variant(stream, "baseline")
    het = run_variant(stream, "het")
    hetqm = run_variant(stream, "het+qm")
    print(f"\nVR-Pipe HET                : {base.cycles / het.cycles:.2f}x")
    print(f"VR-Pipe HET+QM             : {base.cycles / hetqm.cycles:.2f}x")
    print("\nHardware early termination converts far more of the "
          "potential than either software scheme.")


if __name__ == "__main__":
    main()

"""Probing the fixed-function units, the way the paper probed real GPUs.

Section VII-A of the paper sizes the CROP cache, establishes quad-granular
ROP operation, measures format-dependent throughput, and counts the TC bins
by rendering carefully constructed rectangle workloads on Ampere hardware.
This script runs the same methodology against the library's pipeline model
and prints what a fresh reverse-engineering session would conclude.

Run:  python examples/microbench_hardware.py
"""

from repro.micro import (
    pixels_per_cycle_by_format,
    probe_crop_cache_capacity,
    time_vs_quads_per_pixel,
)
from repro.micro.tile_binning import tile_binning_probe


def main():
    print("== CROP cache capacity (random-placement working sets) ==")
    for size in ((4, 4), (8, 8), (8, 16), (16, 16)):
        cap = probe_crop_cache_capacity(*size, trials=2, max_rects=80)
        print(f"  {size[0]:>2}x{size[1]:<2} rectangles: "
              f"largest no-spill working set = {cap / 1024:.1f} KB")
    print("  conclusion: the CROP cache never holds more than ~16 KB.")

    print("\n== ROP throughput by colour format ==")
    ppc = pixels_per_cycle_by_format()
    for fmt, v in ppc.items():
        print(f"  {fmt.upper():>8}: {v:.2f} pixels/cycle")
    print(f"  conclusion: RGBA8 sustains {ppc['rgba8'] / ppc['rgba16f']:.1f}x "
          "RGBA16F -> blending is CROP-cache-bandwidth-bound.")

    print("\n== Quad granularity (time vs quads per blended pixel) ==")
    for qpp, t in time_vs_quads_per_pixel().items():
        print(f"  {qpp:.2f} quads/pixel: {t:.2f}x time")
    print("  conclusion: time tracks quads, not live fragments -> four ROP "
          "units cooperate on each 2x2 quad.")

    print("\n== Tile-binning probe (round-robin 2x2 rectangles) ==")
    for n in (16, 32, 33, 36):
        d = tile_binning_probe(n, rounds=10)
        print(f"  {n:>2} tiles: {d['rects']:>3} rects -> "
              f"{d['warps']:>3} warps (evictions: {d['tc_evictions']})")
    print("  conclusion: the warp-count cliff between 32 and 33 tiles "
          "reveals 32 TC bins per GPC.")


if __name__ == "__main__":
    main()

"""Figure 17 bench: end-to-end speedups over SW and HW rendering."""

from repro.experiments import fig17_end_to_end


def test_fig17(benchmark, scenes):
    data = benchmark.pedantic(
        fig17_end_to_end.run, kwargs={"scenes": scenes}, rounds=1,
        iterations=1)
    for scene, d in data.items():
        if scene == "geomean":
            continue
        assert d["speedup_vs_hw"] > 1.0, scene
        assert d["speedup_vs_sw"] > 0.8, scene
        assert d["fps"] > 0.0
    # Paper geomeans: 2.05x vs SW, 1.60x vs HW.
    gm = data["geomean"]
    assert 1.2 < gm["speedup_vs_hw"] < 3.2
    assert 1.0 < gm["speedup_vs_sw"] < 3.5
    print()
    fig17_end_to_end.main()

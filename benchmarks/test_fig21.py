"""Figure 21 bench: early-termination ratio across viewpoints."""

from repro.experiments import fig21_et_ratio


def test_fig21(benchmark, scenes):
    data = benchmark.pedantic(
        fig21_et_ratio.run, kwargs={"scenes": scenes, "n_views": 6},
        rounds=1, iterations=1)
    for scene, d in data.items():
        # Paper: every scene averages > 1.5 (>= 33% eliminable fragments).
        assert d["mean"] > 1.4, scene
        assert d["min"] >= 1.0, scene
    if {"train", "bonsai"} <= set(data):
        assert data["train"]["mean"] > data["bonsai"]["mean"]
    print()
    fig21_et_ratio.main()

"""Figure 18 bench: ROP quad/fragment reduction ratios."""

from repro.experiments import fig18_reduction
from repro.experiments.runner import geomean


def test_fig18(benchmark, scenes):
    data = benchmark.pedantic(
        fig18_reduction.run, kwargs={"scenes": scenes}, rounds=1,
        iterations=1)
    for scene, d in data.items():
        assert d["het"]["fragment_reduction"] > 1.3, scene
        assert d["qm"]["quad_reduction"] > 1.1, scene
        assert (d["het+qm"]["fragment_reduction"]
                > d["het"]["fragment_reduction"]), scene
        # HET quad reduction trails its fragment reduction (quads die only
        # when all four fragments terminate).
        assert (d["het"]["quad_reduction"]
                <= d["het"]["fragment_reduction"] + 0.05), scene
    # Paper averages: HET 2.52x fragments / 1.90x quads; +QM 1.3x more.
    het_frag = geomean(d["het"]["fragment_reduction"] for d in data.values())
    assert 1.5 < het_frag < 3.2
    print()
    fig18_reduction.main()

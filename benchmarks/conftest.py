"""Benchmark-suite configuration.

Each benchmark regenerates one paper table/figure through the experiment
modules and prints the same rows/series the paper reports (run with ``-s``
to see them).  The in-process scenario cache in
:mod:`repro.experiments.runner` is shared across benchmarks, so the suite
simulates each (scene, variant) pair exactly once.

``REPRO_SCENES`` (comma-separated) restricts the evaluated scenes, e.g.
``REPRO_SCENES=lego,palace pytest benchmarks/`` for a quick pass.
"""

import os

import pytest


def selected_scenes(default=None):
    """Scene list from $REPRO_SCENES, or ``default`` (None = all six)."""
    env = os.environ.get("REPRO_SCENES")
    if env:
        return [s.strip() for s in env.split(",") if s.strip()]
    return default


@pytest.fixture(scope="session")
def scenes():
    return selected_scenes()

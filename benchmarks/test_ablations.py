"""Ablation benches: TGC contribution, HET lag, ROP-width alternative."""

from repro.experiments import ablations


def test_tgc_ablation(benchmark):
    data = benchmark.pedantic(ablations.tgc_ablation, rounds=1, iterations=1)
    for scene, d in data.items():
        # The TGC unit exists to create merge opportunities: removing it
        # must strictly reduce merged pairs and the QM speedup.
        assert d["pairs_with_tgc"] > d["pairs_without_tgc"], scene
        assert d["speedup_with_tgc"] >= d["speedup_without_tgc"], scene


def test_het_lag_sensitivity(benchmark):
    data = benchmark.pedantic(ablations.het_lag_sensitivity, rounds=1,
                              iterations=1)
    lags = sorted(data)
    # Monotone: a longer in-flight window can only reduce the benefit.
    for a, b in zip(lags, lags[1:]):
        assert data[a] >= data[b] - 1e-9
    assert data[lags[0]] > data[lags[-1]]
    ablations.main()


def test_tc_bin_count_sweep(benchmark):
    data = benchmark.pedantic(ablations.tc_bin_count_sweep, rounds=1,
                              iterations=1)
    counts = sorted(data)
    # More bins -> (weakly) more merge pairs; the configured 32 bins must
    # realise most of the 128-bin merge rate.
    for a, b in zip(counts, counts[1:]):
        assert data[a]["pairs"] <= data[b]["pairs"] * 1.02
    assert data[32]["pairs"] > 0.7 * data[128]["pairs"]


def test_format_sensitivity(benchmark):
    data = benchmark.pedantic(ablations.format_sensitivity, rounds=1,
                              iterations=1)
    # A faster CROP (RGBA8) leaves less ROP pressure to relieve: the
    # relative VR-Pipe gain must shrink, while absolute time improves.
    assert (data["rgba8"]["baseline_cycles"]
            < data["rgba16f"]["baseline_cycles"])
    assert data["rgba8"]["speedup"] < data["rgba16f"]["speedup"] + 0.15
    assert data["rgba8"]["speedup"] > 1.0


def test_rop_width_scaling(benchmark):
    data = benchmark.pedantic(ablations.rop_width_scaling, rounds=1,
                              iterations=1)
    widths = data["widths"]
    assert widths[2.0] == 1.0  # the reference width
    assert widths[4.0] > widths[2.0]
    # Widening ROPs helps, but saturates on other units; VR-Pipe at the
    # stock width beats a 2x-wider ROP array.
    assert data["het+qm"] > widths[4.0] * 0.8

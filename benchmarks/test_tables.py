"""Tables I-III bench: configuration, workloads, hardware cost."""

import pytest

from repro.experiments import tables


def test_tables(benchmark):
    t1, t2, t3 = benchmark.pedantic(
        lambda: (tables.table1(), tables.table2(), tables.table3()),
        rounds=1, iterations=1)
    # Table I facts.
    assert t1["# GPC"] == 1
    assert t1["# SIMT Cores"] == 16
    assert t1["SIMT Core Freq. (MHz)"] == 612.0
    assert t1["CROP Cache (KB)"] == 16
    assert t1["# TGC Bins"] == 128
    assert t1["# TC Bins"] == 32
    assert t1["ROP Throughput (quads/cycle, RGBA16F)"] == 2.0
    # Table II scene facts.
    by_name = {r["scene"]: r for r in t2}
    assert by_name["kitchen"]["paper_gaussians"] == 1_850_000
    assert by_name["lego"]["paper_resolution"] == "800x800"
    # Table III: 24.25 KB + 688 B = 24.92 KB.
    assert t3["Tile Grid Coalescing Unit (B)"] == 24832
    assert t3["Quad Reorder Unit (B)"] == 688
    assert t3["Total (KB)"] == pytest.approx(24.92, abs=0.01)
    print()
    tables.main()

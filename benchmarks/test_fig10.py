"""Figure 10 bench: in-shader blending penalty (log-scale bars)."""

from repro.experiments import fig10_inshader


def test_fig10(benchmark, scenes):
    data = benchmark.pedantic(
        fig10_inshader.run, kwargs={"scenes": scenes}, rounds=1, iterations=1)
    for scene, d in data.items():
        # The interlock path sits in the paper's 3-10x band.
        assert 2.0 < d["interlock"] < 12.0, scene
        # The unguarded path is close to the ROP path.
        assert d["no_interlock"] < 1.6, scene
    print()
    fig10_inshader.main()

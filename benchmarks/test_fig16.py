"""Figure 16 bench: the headline result — VR-Pipe speedups over baseline."""

from repro.experiments import fig16_speedup


def test_fig16(benchmark, scenes):
    data = benchmark.pedantic(
        fig16_speedup.run, kwargs={"scenes": scenes}, rounds=1, iterations=1)
    evaluated = [s for s in data if s != "geomean"]
    for scene in evaluated:
        d = data[scene]
        assert d["baseline"] == 1.0
        assert d["qm"] > 1.0
        assert d["het"] > d["qm"] * 0.9          # HET >= QM in the paper too
        assert d["het+qm"] >= max(d["het"], d["qm"])
    gm = data["geomean"]
    # Paper: QM <= 1.49x, HET 1.80x avg, HET+QM 2.07x avg (<= 2.78x).
    assert 1.0 < gm["qm"] < 1.6
    assert 1.4 < gm["het"] < 2.6
    assert 1.7 < gm["het+qm"] < 3.2
    if {"train", "truck", "bonsai"} <= set(evaluated):
        # Outdoor scenes benefit most from early termination.
        assert data["train"]["het"] > data["bonsai"]["het"]
        assert data["truck"]["het"] > data["bonsai"]["het"]
    print()
    fig16_speedup.main()

"""Figure 9 bench: warp threads doing useful blending (< 40% everywhere)."""

from repro.experiments import fig09_warp_occupancy


def test_fig09(benchmark, scenes):
    data = benchmark.pedantic(
        fig09_warp_occupancy.run, kwargs={"scenes": scenes},
        rounds=1, iterations=1)
    for scene, frac in data.items():
        assert 0.0 < frac < 0.40, scene
    print()
    fig09_warp_occupancy.main()

"""Figure 11 bench: multi-pass software early termination."""

from repro.experiments import fig11_multipass


def test_fig11(benchmark, scenes):
    data = benchmark.pedantic(
        fig11_multipass.run, kwargs={"scenes": scenes}, rounds=1,
        iterations=1)
    outdoor = [s for s in data if s in ("train", "truck")]
    for scene, sweep in data.items():
        assert sweep[1] == 1.0
        # Speedups stay modest — nowhere near HET's (paper: <= ~1.2).
        assert max(sweep.values()) < 1.6, scene
    for scene in outdoor:
        sweep = data[scene]
        best_n = max(sweep, key=sweep.get)
        # Large outdoor scenes benefit at an intermediate N.
        assert sweep[best_n] > 1.0, scene
        assert 1 < best_n < 30, scene
    print()
    fig11_multipass.main()

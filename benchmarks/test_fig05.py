"""Figure 5 bench: CUDA vs OpenGL rendering breakdown on two devices."""

from repro.experiments import fig05_sw_vs_hw
from repro.experiments.runner import format_table


def test_fig05(benchmark, scenes):
    data = benchmark.pedantic(
        fig05_sw_vs_hw.run, kwargs={"scenes": scenes}, rounds=1, iterations=1)
    for device, per_scene in data.items():
        for scene, d in per_scene.items():
            # Hardware-path preprocessing/sorting avoid duplication.
            assert d["opengl"]["preprocess"] < d["cuda"]["preprocess"]
            assert d["opengl"]["sort"] < d["cuda"]["sort"]
            # Rasterisation dominates the hardware path (paper: > 70%).
            assert d["opengl"]["rasterize"] / d["opengl_total"] > 0.7
        rows = [[s, d["cuda_total"], d["opengl_total"]]
                for s, d in per_scene.items()]
        print()
        print(format_table(["Scene", "CUDA total (ms)", "OpenGL total (ms)"],
                           rows, title=f"Figure 5 ({device}) totals"))

"""Figure 6 bench: unit utilisation — the pipeline must be ROP-bound."""

from repro.experiments import fig06_utilization


def test_fig06(benchmark, scenes):
    data = benchmark.pedantic(
        fig06_utilization.run, kwargs={"scenes": scenes},
        rounds=1, iterations=1)
    for scene, util in data.items():
        assert util["bottleneck"] in ("crop", "prop"), scene
        assert util["crop"] > 0.8
        assert util["prop"] > 0.6
        assert util["sm"] < 0.5
        assert util["raster"] < 0.6
    print()
    fig06_utilization.main()

"""Figure 7 bench: per-pixel fragment counts +/- early termination."""

from repro.experiments import fig07_frags_per_pixel


def test_fig07(benchmark):
    data = benchmark.pedantic(
        fig07_frags_per_pixel.run, kwargs={"scene": "bonsai"},
        rounds=1, iterations=1)
    stats = data["stats"]
    assert stats["mean_with"] < stats["mean_without"]
    assert stats["max_with"] <= stats["max_without"]
    assert stats["reduction"] > 1.3
    print()
    fig07_frags_per_pixel.main()

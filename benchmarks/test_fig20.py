"""Figure 20 + tile-binning bench: the fixed-function microbenchmarks."""

import pytest

from repro.experiments import fig20_microbench


def test_fig20(benchmark):
    data = benchmark.pedantic(fig20_microbench.run, rounds=1, iterations=1)

    # (a) Capacity probe: bounded by (and close to) 16 KB for every size.
    for size, cap in data["crop_cache_capacity"].items():
        assert cap <= 16 * 1024, size
        assert cap >= 8 * 1024, size

    # (b) RGBA8 doubles RGBA16F pixels/cycle.
    ppc = data["pixels_per_cycle"]
    assert ppc["rgba8"] / ppc["rgba16f"] == pytest.approx(2.0, rel=0.05)

    # (c) Time tracks quads, not pixels.
    times = data["time_vs_quads_per_pixel"]
    keys = sorted(times)
    assert times[keys[-1]] > 3.5 * times[keys[0]]

    # (d) The 32-bin cliff.
    warps = {n: d["warps"] for n, d in data["tile_binning"].items()}
    assert warps[33] == data["tile_binning"][33]["rects"]
    assert warps[32] < data["tile_binning"][32]["rects"] / 2

    print()
    fig20_microbench.main()

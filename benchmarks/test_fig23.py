"""Figure 23 bench: large-scale scenes (Building, Rubble)."""

from repro.experiments import fig23_large_scale


def test_fig23(benchmark):
    data = benchmark.pedantic(fig23_large_scale.run, rounds=1, iterations=1)
    for scene, d in data.items():
        # ROPs stay the bottleneck at city scale.
        assert d["bottleneck"] in ("crop", "prop"), scene
        assert d["utilization"]["crop"] > 0.8
        # VR-Pipe keeps helping (paper: ~1.8-2.1x).
        assert d["speedup"] > 1.4, scene
    print()
    fig23_large_scale.main()

"""Figure 1 bench: shader vs ROP growth across GPU generations."""

from repro.experiments import fig01_unit_counts


def test_fig01(benchmark):
    data = benchmark.pedantic(fig01_unit_counts.run, rounds=1, iterations=1)
    rows = data["rows"]
    assert rows[-1]["shading_norm"] > 4.0   # 16384 / 3584
    assert rows[-1]["rop_norm"] == 2.0      # 176 / 88
    fig01_unit_counts.main()

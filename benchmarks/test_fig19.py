"""Figure 19 bench: energy efficiency (paper: 1.65x avg, <= 2.15x)."""

from repro.experiments import fig19_energy


def test_fig19(benchmark, scenes):
    data = benchmark.pedantic(
        fig19_energy.run, kwargs={"scenes": scenes}, rounds=1, iterations=1)
    for scene, eff in data["per_scene"].items():
        assert eff > 1.0, scene
    assert 1.2 < data["geomean"] < 3.0
    print()
    fig19_energy.main()

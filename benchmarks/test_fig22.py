"""Figure 22 bench: VR-Pipe vs the GSCore dedicated accelerator."""

from repro.experiments import fig22_gscore


def test_fig22(benchmark, scenes):
    data = benchmark.pedantic(
        fig22_gscore.run, kwargs={"scenes": scenes}, rounds=1, iterations=1)
    for scene, slowdown in data["per_scene"].items():
        # The dedicated accelerator wins everywhere, by a bounded margin.
        assert 1.0 < slowdown < 6.0, scene
    assert 1.2 < data["geomean"] < 4.0
    print()
    fig22_gscore.main()

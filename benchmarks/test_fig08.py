"""Figure 8 bench: CUDA early-termination speedup vs fragment reduction."""

from repro.experiments import fig08_cuda_early_term


def test_fig08(benchmark, scenes):
    data = benchmark.pedantic(
        fig08_cuda_early_term.run, kwargs={"scenes": scenes},
        rounds=1, iterations=1)
    for scene, d in data.items():
        assert d["speedup"] > 1.0, scene
        # Lockstep execution: realised speedup trails the fragment
        # reduction (small tolerance: warp rounds also count pruned-only
        # Gaussians, which the fragment ratio does not).
        assert d["speedup"] < d["frag_reduction"] * 1.05, scene
        assert d["frag_reduction"] > 1.5, scene
    print()
    fig08_cuda_early_term.main()
